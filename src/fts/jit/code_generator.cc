#include "fts/jit/code_generator.h"

#include "fts/common/string_util.h"

namespace fts {
namespace {

// Intrinsic spellings per register width. The generated code mirrors the
// static FusedChain (fts/simd/kernels_avx512.cc) but with every per-stage
// decision — type, comparator, 32/64-bit gather shape — burned in.
struct WidthStrings {
  int bits;
  int lanes;
  const char* vec;        // Register type.
  const char* mask;       // Lane-mask type (32-bit lanes).
  const char* setzero;
  const char* set1_32;
  const char* set1_64;
  const char* add32;
  const char* maskz_loadu32;
  const char* maskz_loadu64;
  const char* compress32;
  const char* expand32;
  const char* compressstore32;
  const char* gather32;       // (zero, k, idx, base, 4)
  const char* gather64;       // (zero, k, idx_half, base, 8)
  const char* idx_lo;         // Low-half index extraction, %POS% placeholder.
  const char* idx_hi;
  const char* cast_ps;
  const char* cast_pd;
  const char* cmp_i32;
  const char* cmp_u32;
  const char* cmp_ps;
  const char* cmp_i64;
  const char* cmp_u64;
  const char* cmp_pd;
  const char* setr_indices;   // Ascending 0..lanes-1 constant.
  // Bit-packed unpack primitives.
  const char* mullo32;
  const char* srli32;
  const char* and_op;
  const char* srlv64;
  const char* widen_lo;       // cvtepu32_epi64 of the low half, %V%.
  const char* widen_hi;
};

constexpr WidthStrings kWidth512 = {
    512,
    16,
    "__m512i",
    "__mmask16",
    "_mm512_setzero_si512()",
    "_mm512_set1_epi32",
    "_mm512_set1_epi64",
    "_mm512_add_epi32",
    "_mm512_maskz_loadu_epi32",
    "_mm512_maskz_loadu_epi64",
    "_mm512_maskz_compress_epi32",
    "_mm512_mask_expand_epi32",
    "_mm512_mask_compressstoreu_epi32",
    "_mm512_mask_i32gather_epi32",
    "_mm512_mask_i32gather_epi64",
    "_mm512_castsi512_si256(%POS%)",
    "_mm512_extracti64x4_epi64(%POS%, 1)",
    "_mm512_castsi512_ps",
    "_mm512_castsi512_pd",
    "_mm512_mask_cmp_epi32_mask",
    "_mm512_mask_cmp_epu32_mask",
    "_mm512_mask_cmp_ps_mask",
    "_mm512_mask_cmp_epi64_mask",
    "_mm512_mask_cmp_epu64_mask",
    "_mm512_mask_cmp_pd_mask",
    "_mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, "
    "15)",
    "_mm512_mullo_epi32",
    "_mm512_srli_epi32",
    "_mm512_and_si512",
    "_mm512_srlv_epi64",
    "_mm512_cvtepu32_epi64(_mm512_castsi512_si256(%V%))",
    "_mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64(%V%, 1))",
};

constexpr WidthStrings kWidth256 = {
    256,
    8,
    "__m256i",
    "__mmask8",
    "_mm256_setzero_si256()",
    "_mm256_set1_epi32",
    "_mm256_set1_epi64x",
    "_mm256_add_epi32",
    "_mm256_maskz_loadu_epi32",
    "_mm256_maskz_loadu_epi64",
    "_mm256_maskz_compress_epi32",
    "_mm256_mask_expand_epi32",
    "_mm256_mask_compressstoreu_epi32",
    "_mm256_mmask_i32gather_epi32",
    "_mm256_mmask_i32gather_epi64",
    "_mm256_castsi256_si128(%POS%)",
    "_mm256_extracti128_si256(%POS%, 1)",
    "_mm256_castsi256_ps",
    "_mm256_castsi256_pd",
    "_mm256_mask_cmp_epi32_mask",
    "_mm256_mask_cmp_epu32_mask",
    "_mm256_mask_cmp_ps_mask",
    "_mm256_mask_cmp_epi64_mask",
    "_mm256_mask_cmp_epu64_mask",
    "_mm256_mask_cmp_pd_mask",
    "_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7)",
    "_mm256_mullo_epi32",
    "_mm256_srli_epi32",
    "_mm256_and_si256",
    "_mm256_srlv_epi64",
    "_mm256_cvtepu32_epi64(_mm256_castsi256_si128(%V%))",
    "_mm256_cvtepu32_epi64(_mm256_extracti128_si256(%V%, 1))",
};

constexpr WidthStrings kWidth128 = {
    128,
    4,
    "__m128i",
    "__mmask8",
    "_mm_setzero_si128()",
    "_mm_set1_epi32",
    "_mm_set1_epi64x",
    "_mm_add_epi32",
    "_mm_maskz_loadu_epi32",
    "_mm_maskz_loadu_epi64",
    "_mm_maskz_compress_epi32",
    "_mm_mask_expand_epi32",
    "_mm_mask_compressstoreu_epi32",
    "_mm_mmask_i32gather_epi32",
    "_mm_mmask_i32gather_epi64",
    "%POS%",
    "_mm_unpackhi_epi64(%POS%, %POS%)",
    "_mm_castsi128_ps",
    "_mm_castsi128_pd",
    "_mm_mask_cmp_epi32_mask",
    "_mm_mask_cmp_epu32_mask",
    "_mm_mask_cmp_ps_mask",
    "_mm_mask_cmp_epi64_mask",
    "_mm_mask_cmp_epu64_mask",
    "_mm_mask_cmp_pd_mask",
    "_mm_setr_epi32(0, 1, 2, 3)",
    "_mm_mullo_epi32",
    "_mm_srli_epi32",
    "_mm_and_si128",
    "_mm_srlv_epi64",
    "_mm_cvtepu32_epi64(%V%)",
    "_mm_cvtepu32_epi64(_mm_unpackhi_epi64(%V%, %V%))",
};

const WidthStrings* WidthFor(int bits) {
  switch (bits) {
    case 512:
      return &kWidth512;
    case 256:
      return &kWidth256;
    case 128:
      return &kWidth128;
    default:
      return nullptr;
  }
}

bool Is64Bit(ScanElementType type) {
  return type == ScanElementType::kI64 || type == ScanElementType::kU64 ||
         type == ScanElementType::kF64;
}

const char* CppTypeFor(ScanElementType type) {
  switch (type) {
    case ScanElementType::kI32:
      return "int32_t";
    case ScanElementType::kU32:
      return "uint32_t";
    case ScanElementType::kF32:
      return "float";
    case ScanElementType::kI64:
      return "int64_t";
    case ScanElementType::kU64:
      return "uint64_t";
    case ScanElementType::kF64:
      return "double";
  }
  return "?";
}

const char* IntImmFor(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "_MM_CMPINT_EQ";
    case CompareOp::kLt:
      return "_MM_CMPINT_LT";
    case CompareOp::kLe:
      return "_MM_CMPINT_LE";
    case CompareOp::kNe:
      return "_MM_CMPINT_NE";
    case CompareOp::kGe:
      return "_MM_CMPINT_NLT";
    case CompareOp::kGt:
      return "_MM_CMPINT_NLE";
  }
  return "?";
}

const char* FloatImmFor(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "_CMP_EQ_OQ";
    case CompareOp::kLt:
      return "_CMP_LT_OS";
    case CompareOp::kLe:
      return "_CMP_LE_OS";
    case CompareOp::kNe:
      return "_CMP_NEQ_UQ";
    case CompareOp::kGe:
      return "_CMP_GE_OS";
    case CompareOp::kGt:
      return "_CMP_GT_OS";
  }
  return "?";
}

const char* CppOpFor(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

// True when any aggregate term reads column values (COUNT-only terms fold
// nothing per row; the match count is added to every term at return).
bool AnyAggValueTerm(const JitScanSignature& sig) {
  for (const JitAggSignature& a : sig.aggs) {
    if (a.op != AggOp::kCount) return true;
  }
  return false;
}

// Per-row fold statements of the aggregate terms for survivor row `r`
// (inside the generated fold_rows loop). Mirrors FoldValueAtRow with every
// op/type/domain decision burned in.
std::string AggFoldBody(const JitScanSignature& sig) {
  std::string out;
  for (size_t t = 0; t < sig.aggs.size(); ++t) {
    const JitAggSignature& a = sig.aggs[t];
    if (a.op == AggOp::kCount) continue;
    const std::string v = StrFormat("agg_col%zu[r]", t);
    if (a.op == AggOp::kSum) {
      switch (a.domain) {
        case AggDomain::kSigned:
          out += StrFormat(
              "      accs[%zu].sum_bits += (unsigned long long)(long long)"
              "%s;\n",
              t, v.c_str());
          break;
        case AggDomain::kUnsigned:
          out += StrFormat(
              "      accs[%zu].sum_bits += (unsigned long long)%s;\n", t,
              v.c_str());
          break;
        case AggDomain::kFloat:
          out += StrFormat("      accs[%zu].sum_double += (double)%s;\n", t,
                           v.c_str());
          break;
      }
      continue;
    }
    // MIN / MAX: widen to the accumulator domain, then conditional update.
    const char* wide = a.domain == AggDomain::kSigned ? "long long"
                       : a.domain == AggDomain::kUnsigned
                           ? "unsigned long long"
                           : "double";
    const char* field =
        a.domain == AggDomain::kSigned
            ? (a.op == AggOp::kMin ? "min_i" : "max_i")
            : a.domain == AggDomain::kUnsigned
                  ? (a.op == AggOp::kMin ? "min_u" : "max_u")
                  : (a.op == AggOp::kMin ? "min_d" : "max_d");
    out += StrFormat(
        "      { const %s fv%zu = (%s)%s;\n"
        "        if (fv%zu %s accs[%zu].%s) accs[%zu].%s = fv%zu; }\n",
        wide, t, wide, v.c_str(), t, a.op == AggOp::kMin ? "<" : ">", t,
        field, t, field, t);
  }
  return out;
}

// Final-stage emission statements: what happens to a surviving mask of
// positions. Three shapes: count-only (popcount), aggregate pushdown
// (compress-store survivors to a stack buffer, fold each, popcount), or
// position materialization (compress-store to `out`).
std::string FinalEmitCode(const WidthStrings& w, const JitScanSignature& sig,
                          const std::string& mask, const std::string& pos,
                          const char* indent) {
  std::string out;
  if (!sig.aggs.empty() && AnyAggValueTerm(sig)) {
    out += StrFormat("%salignas(64) uint32_t fold_buf[16];\n", indent);
    out += StrFormat("%s%s(fold_buf, %s, %s);\n", indent, w.compressstore32,
                     mask.c_str(), pos.c_str());
    out += StrFormat(
        "%sfold_rows(fold_buf, __builtin_popcount((unsigned)%s));\n", indent,
        mask.c_str());
  } else if (sig.aggs.empty() && !sig.count_only) {
    out += StrFormat("%s%s(out + out_count, %s, %s);\n", indent,
                     w.compressstore32, mask.c_str(), pos.c_str());
  }
  out += StrFormat("%sout_count += (size_t)__builtin_popcount((unsigned)%s);\n",
                   indent, mask.c_str());
  return out;
}

// Masked-compare expression for `lanes`-wide 32-bit data, e.g.
// _mm512_mask_cmp_epi32_mask(valid, a, search, _MM_CMPINT_EQ).
std::string Cmp32Expr(const WidthStrings& w, ScanElementType type,
                      CompareOp op, const std::string& valid,
                      const std::string& a, const std::string& b) {
  switch (type) {
    case ScanElementType::kI32:
      return StrFormat("%s(%s, %s, %s, %s)", w.cmp_i32, valid.c_str(),
                       a.c_str(), b.c_str(), IntImmFor(op));
    case ScanElementType::kU32:
      return StrFormat("%s(%s, %s, %s, %s)", w.cmp_u32, valid.c_str(),
                       a.c_str(), b.c_str(), IntImmFor(op));
    case ScanElementType::kF32:
      return StrFormat("%s(%s, %s(%s), %s(%s), %s)", w.cmp_ps, valid.c_str(),
                       w.cast_ps, a.c_str(), w.cast_ps, b.c_str(),
                       FloatImmFor(op));
    default:
      break;
  }
  return "#error unreachable";
}

std::string Cmp64Expr(const WidthStrings& w, ScanElementType type,
                      CompareOp op, const std::string& valid,
                      const std::string& a, const std::string& b) {
  switch (type) {
    case ScanElementType::kI64:
      return StrFormat("%s(%s, %s, %s, %s)", w.cmp_i64, valid.c_str(),
                       a.c_str(), b.c_str(), IntImmFor(op));
    case ScanElementType::kU64:
      return StrFormat("%s(%s, %s, %s, %s)", w.cmp_u64, valid.c_str(),
                       a.c_str(), b.c_str(), IntImmFor(op));
    case ScanElementType::kF64:
      return StrFormat("%s(%s, %s(%s), %s(%s), %s)", w.cmp_pd, valid.c_str(),
                       w.cast_pd, a.c_str(), w.cast_pd, b.c_str(),
                       FloatImmFor(op));
    default:
      break;
  }
  return "#error unreachable";
}

// Per-stage constants for a bit-packed stage: the search code broadcast
// as epi64 (codes are unpacked into 64-bit lanes), the bit-width
// multiplier, and the code mask.
std::string PackedDecls(const WidthStrings& w, size_t s, int bits) {
  std::string out;
  out += StrFormat(
      "  const %s search%zu = %s(*reinterpret_cast<const uint32_t*>("
      "values_bytes + %zu));\n",
      w.vec, s, w.set1_64, s * kJitValueSlotBytes);
  out += StrFormat("  const %s pk_mult%zu = %s(%d);\n", w.vec, s, w.set1_32,
                   bits);
  out += StrFormat("  const %s pk_mask%zu = %s(%lldLL);\n", w.vec, s,
                   w.set1_64,
                   static_cast<long long>((1ull << bits) - 1));
  return out;
}

// Unpack-and-compare of packed stage `s` at the rows in `row_vec`:
// byte-granular 8-byte window gathers, variable shift, mask, epu64
// compare. Defines `<result>` in the enclosing scope.
std::string PackedCompareCode(const WidthStrings& w,
                              const JitScanSignature& sig, size_t s,
                              const std::string& row_vec,
                              const std::string& valid,
                              const std::string& result) {
  const int half = w.lanes / 2;
  const CompareOp op = sig.stages[s].op;
  const std::string idx_lo = ReplaceAll(w.idx_lo, "%POS%", "pk_byteoff");
  const std::string idx_hi = ReplaceAll(w.idx_hi, "%POS%", "pk_byteoff");
  const std::string widen_lo = ReplaceAll(w.widen_lo, "%V%", "pk_shift");
  const std::string widen_hi = ReplaceAll(w.widen_hi, "%V%", "pk_shift");

  std::string out;
  out += StrFormat("    const %s pk_bitoff = %s(%s, pk_mult%zu);\n", w.vec,
                   w.mullo32, row_vec.c_str(), s);
  out += StrFormat("    const %s pk_byteoff = %s(pk_bitoff, 3);\n", w.vec,
                   w.srli32);
  out += StrFormat("    const %s pk_shift = %s(pk_bitoff, pk_seven);\n",
                   w.vec, w.and_op);
  out += StrFormat(
      "    const __mmask8 pk_vlo = (__mmask8)(%s & %uu);\n",
      valid.c_str(), (1u << half) - 1);
  out += StrFormat("    const __mmask8 pk_vhi = (__mmask8)(%s >> %d);\n",
                   valid.c_str(), half);
  out += StrFormat(
      "    const %s pk_clo = %s(%s(%s(%s, pk_vlo, %s, col%zu, 1), %s), "
      "pk_mask%zu);\n",
      w.vec, w.and_op, w.srlv64, w.gather64, w.setzero, idx_lo.c_str(), s,
      widen_lo.c_str(), s);
  out += StrFormat(
      "    const %s pk_chi = %s(%s(%s(%s, pk_vhi, %s, col%zu, 1), %s), "
      "pk_mask%zu);\n",
      w.vec, w.and_op, w.srlv64, w.gather64, w.setzero, idx_hi.c_str(), s,
      widen_hi.c_str(), s);
  out += StrFormat(
      "    const %s %s = (%s)((unsigned)%s | ((unsigned)%s << %d));\n",
      w.mask, result.c_str(), w.mask,
      Cmp64Expr(w, ScanElementType::kU64, op, "pk_vlo", "pk_clo",
                StrFormat("search%zu", s))
          .c_str(),
      Cmp64Expr(w, ScanElementType::kU64, op, "pk_vhi", "pk_chi",
                StrFormat("search%zu", s))
          .c_str(),
      half);
  return out;
}

// Broadcast declaration for a stage's search value.
std::string SearchDecl(const WidthStrings& w, size_t s,
                       ScanElementType type) {
  // Values are read from 8-byte slots as raw bits; floats are broadcast by
  // bit pattern and compared through a register cast, so no precision is
  // lost.
  if (Is64Bit(type)) {
    return StrFormat(
        "  const %s search%zu = %s(*reinterpret_cast<const long long*>("
        "values_bytes + %zu));\n",
        w.vec, s, w.set1_64, s * kJitValueSlotBytes);
  }
  return StrFormat(
      "  const %s search%zu = %s(*reinterpret_cast<const int*>("
      "values_bytes + %zu));\n",
      w.vec, s, w.set1_32, s * kJitValueSlotBytes);
}

// Emits process_<s>: apply predicate s to a register of positions.
std::string ProcessLambda(const WidthStrings& w, const JitScanSignature& sig,
                          size_t s) {
  const ScanElementType type = sig.stages[s].type;
  const CompareOp op = sig.stages[s].op;
  const bool last = (s + 1 == sig.stages.size());
  std::string body;

  if (sig.stages[s].packed_bits != 0) {
    body += PackedCompareCode(w, sig, s, "pos", "valid", "m");
  } else if (!Is64Bit(type)) {
    body += StrFormat(
        "    const %s g = %s(%s, valid, pos, col%zu, 4);\n", w.vec,
        w.gather32, w.setzero, s);
    body += StrFormat("    const %s m = %s;\n", w.mask,
                      Cmp32Expr(w, type, op, "valid", "g",
                                StrFormat("search%zu", s))
                          .c_str());
  } else {
    // Width transition: two half-width 64-bit gathers per position
    // register (Section V's index-list split).
    const int half = w.lanes / 2;
    const std::string idx_lo = ReplaceAll(w.idx_lo, "%POS%", "pos");
    const std::string idx_hi = ReplaceAll(w.idx_hi, "%POS%", "pos");
    body += StrFormat(
        "    const __mmask8 valid_lo = (__mmask8)(valid & %uu);\n",
        (1u << half) - 1);
    body += StrFormat("    const __mmask8 valid_hi = (__mmask8)(valid >> "
                      "%d);\n",
                      half);
    body += StrFormat(
        "    const %s g_lo = %s(%s, valid_lo, %s, col%zu, 8);\n", w.vec,
        w.gather64, w.setzero, idx_lo.c_str(), s);
    body += StrFormat(
        "    const %s g_hi = %s(%s, valid_hi, %s, col%zu, 8);\n", w.vec,
        w.gather64, w.setzero, idx_hi.c_str(), s);
    body += StrFormat(
        "    const %s m = (%s)((unsigned)%s | ((unsigned)%s << %d));\n",
        w.mask, w.mask,
        Cmp64Expr(w, type, op, "valid_lo", "g_lo",
                  StrFormat("search%zu", s))
            .c_str(),
        Cmp64Expr(w, type, op, "valid_hi", "g_hi",
                  StrFormat("search%zu", s))
            .c_str(),
        half);
  }

  body += "    if (m == 0) return;\n";
  if (last) {
    body += FinalEmitCode(w, sig, "m", "pos", "    ");
  } else {
    body += StrFormat(
        "    push_%zu(%s(m, pos), __builtin_popcount((unsigned)m));\n",
        s + 1, w.compress32);
  }

  return StrFormat("  const auto process_%zu = [&](%s pos, %s valid) {\n%s"
                   "  };\n",
                   s, w.vec, w.mask, body.c_str());
}

// Emits push_<s>: append positions to stage s's accumulator, flushing the
// incomplete list first on overflow (Section III).
std::string PushLambda(const WidthStrings& w, size_t s) {
  return StrFormat(
      "  const auto push_%zu = [&](%s vals, int n) {\n"
      "    if (cnt%zu + n > %d) {\n"
      "      const int pending = cnt%zu;\n"
      "      cnt%zu = 0;\n"
      "      process_%zu(acc%zu, (%s)((1u << pending) - 1));\n"
      "    }\n"
      "    acc%zu = %s(acc%zu, (%s)(~0u << cnt%zu), vals);\n"
      "    cnt%zu += n;\n"
      "    if (cnt%zu == %d) {\n"
      "      cnt%zu = 0;\n"
      "      process_%zu(acc%zu, (%s)((1u << %d) - 1));\n"
      "    }\n"
      "  };\n",
      s, w.vec, s, w.lanes, s, s, s, s, w.mask, s, w.expand32, s, w.mask, s,
      s, s, w.lanes, s, s, s, w.mask, w.lanes);
}

// Emits the main block loop over the first column.
std::string MainLoop(const WidthStrings& w, const JitScanSignature& sig) {
  const ScanElementType type = sig.stages[0].type;
  const CompareOp op = sig.stages[0].op;
  const bool single = sig.stages.size() == 1;
  const int half = w.lanes / 2;

  std::string compare_block;
  if (sig.stages[0].packed_bits != 0) {
    compare_block += PackedCompareCode(w, sig, 0, "indices", "valid", "m0");
  } else if (!Is64Bit(type)) {
    compare_block += StrFormat(
        "    const %s data0 = %s(valid, col0 + start * 4);\n", w.vec,
        w.maskz_loadu32);
    compare_block += StrFormat(
        "    const %s m0 = %s;\n", w.mask,
        Cmp32Expr(w, type, op, "valid", "data0", "search0").c_str());
  } else {
    compare_block += StrFormat(
        "    const __mmask8 valid_lo = (__mmask8)(valid & %uu);\n",
        (1u << half) - 1);
    compare_block += StrFormat(
        "    const __mmask8 valid_hi = (__mmask8)(valid >> %d);\n", half);
    compare_block += StrFormat(
        "    const %s d_lo = %s(valid_lo, col0 + start * 8);\n", w.vec,
        w.maskz_loadu64);
    compare_block += StrFormat(
        "    const %s d_hi = %s(valid_hi, col0 + (start + %d) * 8);\n",
        w.vec, w.maskz_loadu64, half);
    compare_block += StrFormat(
        "    const %s m0 = (%s)((unsigned)%s | ((unsigned)%s << %d));\n",
        w.mask, w.mask,
        Cmp64Expr(w, type, op, "valid_lo", "d_lo", "search0").c_str(),
        Cmp64Expr(w, type, op, "valid_hi", "d_hi", "search0").c_str(), half);
  }

  std::string on_match;
  if (single) {
    on_match = FinalEmitCode(w, sig, "m0", "indices", "      ");
  } else {
    on_match = StrFormat(
        "      push_1(%s(m0, indices), __builtin_popcount((unsigned)m0));\n",
        w.compress32);
  }

  return StrFormat(
      "  %s indices = %s;\n"
      "  const %s step = %s(%d);\n"
      "  const size_t blocks = (row_count + %d) / %d;\n"
      "  for (size_t b = 0; b < blocks; ++b) {\n"
      "    const size_t start = b * %d;\n"
      "    const size_t left = row_count - start;\n"
      "    const %s valid = (%s)((left >= %d) ? %uu : ((1u << left) - 1));\n"
      "%s"
      "    if (m0 != 0) {\n"
      "%s"
      "    }\n"
      "    indices = %s(indices, step);\n"
      "  }\n",
      w.vec, w.setr_indices, w.vec, w.set1_32, w.lanes, w.lanes - 1,
      w.lanes, w.lanes, w.mask, w.mask, w.lanes, (1u << w.lanes) - 1,
      compare_block.c_str(), on_match.c_str(), w.add32);
}

bool AnyRleStage(const JitScanSignature& sig) {
  for (const JitStageSignature& s : sig.stages) {
    if (s.encoding == static_cast<uint8_t>(ColumnEncoding::kRle)) {
      return true;
    }
  }
  return false;
}

// All-RLE compressed-domain operator: co-iterates the stages' run streams
// over row segments. Each segment is the span up to the nearest run
// boundary of any stage, so every compare touches run values — O(total
// runs) work regardless of row_count — and qualifying segments are
// emitted (or counted) as whole position spans.
StatusOr<std::string> GenerateRleScanSource(
    const JitScanSignature& signature) {
  for (const JitStageSignature& stage : signature.stages) {
    if (stage.encoding != static_cast<uint8_t>(ColumnEncoding::kRle) ||
        stage.packed_bits != 0) {
      return Status::InvalidArgument(
          "RLE operators fuse all-RLE chains only");
    }
  }
  if (!signature.aggs.empty()) {
    return Status::InvalidArgument(
        "RLE operators do not fold aggregate terms");
  }
  const size_t n = signature.stages.size();
  std::string src;
  src += StrFormat(
      "// Generated by fts::GenerateFusedScanSource (RLE run\n"
      "// co-iteration).\n"
      "// Signature: %s\n"
      "#include <cstddef>\n"
      "#include <cstdint>\n\n"
      "extern \"C\" size_t %s(const void* const* columns,\n"
      "                       const void* values, size_t row_count,\n"
      "                       uint32_t* out) {\n"
      "  if (row_count == 0) return 0;\n"
      "  // Structural mirror of fts::JitRleView (layout is ABI).\n"
      "  struct RleView {\n"
      "    const void* run_values;\n"
      "    const uint32_t* run_ends;\n"
      "    uint64_t run_count;\n"
      "  };\n"
      "  const char* const values_bytes =\n"
      "      static_cast<const char*>(values);\n",
      signature.CacheKey().c_str(), kJitScanSymbol);
  for (size_t s = 0; s < n; ++s) {
    const char* type = CppTypeFor(signature.stages[s].type);
    src += StrFormat(
        "  const RleView& view%zu =\n"
        "      *static_cast<const RleView*>(columns[%zu]);\n"
        "  const %s* const runs%zu =\n"
        "      static_cast<const %s*>(view%zu.run_values);\n"
        "  const %s v%zu = *reinterpret_cast<const %s*>(values_bytes + "
        "%zu);\n"
        "  uint64_t r%zu = 0;\n",
        s, s, type, s, type, s, type, s, type, s * kJitValueSlotBytes, s);
  }
  src +=
      "  size_t out_count = 0;\n"
      "  uint32_t pos = 0;\n"
      "  const uint32_t rows = (uint32_t)row_count;\n"
      "  while (pos < rows) {\n";
  for (size_t s = 0; s < n; ++s) {
    src += StrFormat("    while (view%zu.run_ends[r%zu] <= pos) ++r%zu;\n",
                     s, s, s);
  }
  src += "    uint32_t seg_end = view0.run_ends[r0];\n";
  for (size_t s = 1; s < n; ++s) {
    src += StrFormat(
        "    if (view%zu.run_ends[r%zu] < seg_end) {\n"
        "      seg_end = view%zu.run_ends[r%zu];\n"
        "    }\n",
        s, s, s, s);
  }
  src += "    if (seg_end > rows) seg_end = rows;\n";
  std::string match;
  for (size_t s = 0; s < n; ++s) {
    if (s > 0) match += " &&\n        ";
    match += StrFormat("runs%zu[r%zu] %s v%zu", s, s,
                       CppOpFor(signature.stages[s].op), s);
  }
  src += StrFormat("    if (%s) {\n", match.c_str());
  if (signature.count_only) {
    src += "      out_count += seg_end - pos;\n";
  } else {
    src +=
        "      for (uint32_t p = pos; p < seg_end; ++p) {\n"
        "        out[out_count++] = p;\n"
        "      }\n";
  }
  src +=
      "    }\n"
      "    pos = seg_end;\n"
      "  }\n"
      "  return out_count;\n}\n";
  return src;
}

}  // namespace

StatusOr<std::string> GenerateFusedScanSource(
    const JitScanSignature& signature) {
  const WidthStrings* width = WidthFor(signature.register_bits);
  if (width == nullptr) {
    return Status::InvalidArgument(StrFormat(
        "invalid register width %d (need 128/256/512)",
        signature.register_bits));
  }
  if (signature.stages.empty() ||
      signature.stages.size() > kMaxScanStages) {
    return Status::InvalidArgument(
        StrFormat("signature has %zu stages; supported range is 1..%zu",
                  signature.stages.size(), kMaxScanStages));
  }
  if (!signature.aggs.empty() && signature.count_only) {
    return Status::InvalidArgument(
        "count_only and aggregate terms are mutually exclusive");
  }
  if (signature.aggs.size() > kMaxAggTerms) {
    return Status::InvalidArgument(
        StrFormat("signature has %zu aggregate terms; kernels support up "
                  "to %zu",
                  signature.aggs.size(), kMaxAggTerms));
  }
  if (AnyRleStage(signature)) {
    return GenerateRleScanSource(signature);
  }
  bool any_packed = false;
  for (const JitStageSignature& stage : signature.stages) {
    if (stage.packed_bits == 0) continue;
    any_packed = true;
    if (stage.type != ScanElementType::kU32) {
      return Status::InvalidArgument(
          "bit-packed stages scan uint32 dictionary codes");
    }
    if (stage.packed_bits > 26) {
      return Status::InvalidArgument(
          StrFormat("packed bit width %d exceeds the supported 26",
                    stage.packed_bits));
    }
  }
  const WidthStrings& w = *width;
  const size_t n = signature.stages.size();

  std::string src;
  src += StrFormat(
      "// Generated by fts::GenerateFusedScanSource.\n"
      "// Signature: %s\n"
      "#include <immintrin.h>\n"
      "#include <cstddef>\n"
      "#include <cstdint>\n\n"
      "extern \"C\" size_t %s(const void* const* columns,\n"
      "                       const void* values, size_t row_count,\n"
      "                       uint32_t* out) {\n"
      "  if (row_count == 0) return 0;\n"
      "  const char* const values_bytes =\n"
      "      static_cast<const char*>(values);\n"
      "  size_t out_count = 0;\n",
      signature.CacheKey().c_str(), kJitScanSymbol);

  // Aggregate-pushdown state: a field-for-field mirror of
  // fts::AggAccumulator (every member 8 bytes, no padding — pinned by
  // static_asserts on both sides), the typed aggregate column pointers
  // (appended after the stage columns), and the per-survivor fold loop.
  if (!signature.aggs.empty()) {
    src +=
        "  struct Acc {\n"
        "    unsigned long long count;\n"
        "    unsigned long long sum_bits;\n"
        "    double sum_double;\n"
        "    long long min_i;\n"
        "    long long max_i;\n"
        "    unsigned long long min_u;\n"
        "    unsigned long long max_u;\n"
        "    double min_d;\n"
        "    double max_d;\n"
        "  };\n"
        "  static_assert(sizeof(Acc) == 72,\n"
        "                \"mirror of fts::AggAccumulator\");\n"
        "  Acc* const accs = reinterpret_cast<Acc*>(out);\n";
    for (size_t t = 0; t < signature.aggs.size(); ++t) {
      if (signature.aggs[t].op == AggOp::kCount) continue;
      const char* type = CppTypeFor(signature.aggs[t].type);
      src += StrFormat(
          "  const %s* const agg_col%zu = static_cast<const %s*>("
          "columns[%zu]);\n",
          type, t, type, n + t);
    }
    if (AnyAggValueTerm(signature)) {
      src += StrFormat(
          "  const auto fold_rows = [&](const uint32_t* rows, int fn) {\n"
          "    for (int fi = 0; fi < fn; ++fi) {\n"
          "      const size_t r = rows[fi];\n"
          "%s"
          "    }\n"
          "  };\n",
          AggFoldBody(signature).c_str());
    }
  }

  // Column pointers and broadcast search values.
  if (any_packed) {
    src += StrFormat("  const %s pk_seven = %s(7);\n", w.vec, w.set1_32);
  }
  for (size_t s = 0; s < n; ++s) {
    src += StrFormat(
        "  const char* const col%zu = static_cast<const char*>("
        "columns[%zu]);\n",
        s, s);
    if (signature.stages[s].packed_bits != 0) {
      src += PackedDecls(w, s, signature.stages[s].packed_bits);
    } else {
      src += SearchDecl(w, s, signature.stages[s].type);
    }
  }
  // Accumulators for stages 1..n-1.
  for (size_t s = 1; s < n; ++s) {
    src += StrFormat("  %s acc%zu = %s;\n  int cnt%zu = 0;\n", w.vec, s,
                     w.setzero, s);
  }
  src += "\n";

  // Lambdas, innermost stage first so each push can call the next
  // process. C++ lambdas capture by reference, giving the same chain the
  // static kernel builds with member functions.
  for (size_t s = n; s-- > 1;) {
    src += ProcessLambda(w, signature, s);
    src += PushLambda(w, s);
  }

  src += MainLoop(w, signature);

  // Drain partial accumulators front to back.
  for (size_t s = 1; s < n; ++s) {
    src += StrFormat(
        "  if (cnt%zu > 0) {\n"
        "    const int pending = cnt%zu;\n"
        "    cnt%zu = 0;\n"
        "    process_%zu(acc%zu, (%s)((1u << pending) - 1));\n"
        "  }\n",
        s, s, s, s, s, w.mask);
  }
  // Every term's count is the conjunction's match count, folded once.
  for (size_t t = 0; t < signature.aggs.size(); ++t) {
    src += StrFormat(
        "  accs[%zu].count += (unsigned long long)out_count;\n", t);
  }
  src += "  return out_count;\n}\n";
  return src;
}

StatusOr<std::string> GenerateGatherSource(
    const JitScanSignature& signature) {
  if (signature.gathers.empty()) {
    return Status::InvalidArgument(
        "signature carries no gather terms; use GenerateFusedScanSource");
  }
  if (!signature.stages.empty() || !signature.aggs.empty() ||
      signature.count_only) {
    return Status::InvalidArgument(
        "gather operators are gather-only: stages, aggregates and "
        "count_only do not combine with gather terms");
  }
  if (signature.gathers.size() > kMaxGatherTerms) {
    return Status::InvalidArgument(
        StrFormat("signature has %zu gather terms; kernels support up to "
                  "%zu",
                  signature.gathers.size(), kMaxGatherTerms));
  }
  for (const JitGatherSignature& g : signature.gathers) {
    if (g.packed_bits > 26) {
      return Status::InvalidArgument(
          StrFormat("packed bit width %d exceeds the supported 26",
                    g.packed_bits));
    }
    if (!g.dict && g.packed_bits != 0 &&
        (g.type == ScanElementType::kF32 ||
         g.type == ScanElementType::kF64)) {
      return Status::InvalidArgument(
          "frame-of-reference gather terms decode integral elements only");
    }
  }
  const size_t n = signature.gathers.size();

  std::string src;
  src += StrFormat(
      "// Generated by fts::GenerateGatherSource (fused batch-gather:\n"
      "// every projected column materialized in one pass over the\n"
      "// survivor position list).\n"
      "// Signature: %s\n"
      "#include <cstddef>\n"
      "#include <cstdint>\n\n"
      "extern \"C\" size_t %s(const void* const* columns,\n"
      "                       const void* values, size_t row_count,\n"
      "                       uint32_t* out) {\n"
      "  (void)out;\n"
      "  // Structural mirror of fts::JitGatherView (layout is ABI).\n"
      "  struct GatherView {\n"
      "    const void* data;\n"
      "    const void* dict;\n"
      "    void* out;\n"
      "    unsigned long long base_bits;\n"
      "  };\n"
      "  const uint32_t* const positions =\n"
      "      static_cast<const uint32_t*>(values);\n",
      signature.CacheKey().c_str(), kJitScanSymbol);

  std::string body;
  for (size_t t = 0; t < n; ++t) {
    const JitGatherSignature& g = signature.gathers[t];
    const char* type = CppTypeFor(g.type);
    src += StrFormat(
        "  const GatherView& view%zu =\n"
        "      *static_cast<const GatherView*>(columns[%zu]);\n"
        "  %s* const dst%zu = static_cast<%s*>(view%zu.out);\n",
        t, t, type, t, type, t);
    if (g.dict) {
      src += StrFormat(
          "  const %s* const dict%zu = static_cast<const %s*>("
          "view%zu.dict);\n",
          type, t, type, t);
    }
    if (g.packed_bits != 0) {
      src += StrFormat(
          "  const uint8_t* const bytes%zu = static_cast<const uint8_t*>("
          "view%zu.data);\n",
          t, t);
      const std::string code = StrFormat(
          "      const size_t bit%zu = p * %d;\n"
          "      unsigned long long w%zu;\n"
          "      __builtin_memcpy(&w%zu, bytes%zu + (bit%zu >> 3), 8);\n"
          "      const uint32_t c%zu =\n"
          "          (uint32_t)((w%zu >> (bit%zu & 7)) & %lluULL);\n",
          t, g.packed_bits, t, t, t, t, t, t, t,
          static_cast<unsigned long long>((1ull << g.packed_bits) - 1));
      if (g.dict) {
        body += StrFormat("    {\n%s      dst%zu[i] = dict%zu[c%zu];\n    }\n",
                          code.c_str(), t, t, t);
      } else {
        // Frame-of-reference: rebase in u64 and truncate to the element
        // width — the wraparound addition GatherBitsAtRow defines.
        src += StrFormat(
            "  const unsigned long long base%zu = view%zu.base_bits;\n", t,
            t);
        body += StrFormat(
            "    {\n%s      dst%zu[i] = (%s)%s(base%zu + c%zu);\n    }\n",
            code.c_str(), t, type,
            Is64Bit(g.type) ? "" : "(uint32_t)", t, t);
      }
    } else if (g.dict) {
      src += StrFormat(
          "  const uint32_t* const codes%zu = static_cast<const uint32_t*>("
          "view%zu.data);\n",
          t, t);
      body += StrFormat("    dst%zu[i] = dict%zu[codes%zu[p]];\n", t, t, t);
    } else {
      src += StrFormat(
          "  const %s* const src%zu = static_cast<const %s*>("
          "view%zu.data);\n",
          type, t, type, t);
      body += StrFormat("    dst%zu[i] = src%zu[p];\n", t, t);
    }
  }

  src += StrFormat(
      "  for (size_t i = 0; i < row_count; ++i) {\n"
      "    const size_t p = positions[i];\n"
      "%s"
      "  }\n"
      "  return row_count;\n}\n",
      body.c_str());
  return src;
}

StatusOr<std::string> GenerateSisdScanSource(
    const JitScanSignature& signature) {
  if (signature.stages.empty() ||
      signature.stages.size() > kMaxScanStages) {
    return Status::InvalidArgument(
        StrFormat("signature has %zu stages; supported range is 1..%zu",
                  signature.stages.size(), kMaxScanStages));
  }
  if (AnyRleStage(signature)) {
    return Status::InvalidArgument(
        "the SISD generator emits per-row loops; RLE chains have no "
        "row-indexed operand stream");
  }
  const size_t n = signature.stages.size();

  std::string src;
  src += StrFormat(
      "// Generated by fts::GenerateSisdScanSource.\n"
      "// Signature: %s (data-centric tuple-at-a-time)\n"
      "#include <cstddef>\n"
      "#include <cstdint>\n\n"
      "extern \"C\" size_t %s(const void* const* columns,\n"
      "                       const void* values, size_t row_count,\n"
      "                       uint32_t* out) {\n"
      "  const char* const values_bytes =\n"
      "      static_cast<const char*>(values);\n",
      signature.CacheKey().c_str(), kJitScanSymbol);

  std::string condition;
  for (size_t s = 0; s < n; ++s) {
    if (s > 0) condition += " &&\n        ";
    if (signature.stages[s].packed_bits != 0) {
      // Scalar unpack of the b-bit code from its 8-byte window.
      const int bits = signature.stages[s].packed_bits;
      src += StrFormat(
          "  const uint8_t* const col%zu = static_cast<const uint8_t*>("
          "static_cast<const void*>(columns[%zu]));\n",
          s, s);
      src += StrFormat(
          "  const uint32_t v%zu = *reinterpret_cast<const uint32_t*>("
          "values_bytes + %zu);\n",
          s, s * kJitValueSlotBytes);
      src += StrFormat(
          "  const auto code%zu = [col%zu](size_t i) {\n"
          "    const size_t bit = i * %d;\n"
          "    unsigned long long window;\n"
          "    __builtin_memcpy(&window, col%zu + (bit >> 3), 8);\n"
          "    return (uint32_t)((window >> (bit & 7)) & %lluULL);\n"
          "  };\n",
          s, s, bits, s,
          static_cast<unsigned long long>((1ull << bits) - 1));
      condition += StrFormat("code%zu(i) %s v%zu", s,
                             CppOpFor(signature.stages[s].op), s);
      continue;
    }
    const char* type = CppTypeFor(signature.stages[s].type);
    src += StrFormat(
        "  const %s* const col%zu = static_cast<const %s*>("
        "static_cast<const void*>(columns[%zu]));\n",
        type, s, type, s);
    src += StrFormat(
        "  const %s v%zu = *reinterpret_cast<const %s*>(values_bytes + "
        "%zu);\n",
        type, s, type, s * kJitValueSlotBytes);
    condition += StrFormat("col%zu[i] %s v%zu", s,
                           CppOpFor(signature.stages[s].op), s);
  }
  src += StrFormat(
      "  size_t out_count = 0;\n"
      "  for (size_t i = 0; i < row_count; ++i) {\n"
      "    if (%s) {\n"
      "      out[out_count++] = (uint32_t)i;\n"
      "    }\n"
      "  }\n"
      "  return out_count;\n}\n",
      condition.c_str());
  return src;
}

}  // namespace fts
