#include "fts/jit/scan_signature.h"

#include "fts/common/string_util.h"

namespace fts {

std::string JitScanSignature::CacheKey() const {
  std::string key = StrFormat("%d:", register_bits);
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) key += ';';
    key += ScanElementTypeToString(stages[i].type);
    key += CompareOpToString(stages[i].op);
    if (stages[i].packed_bits != 0) {
      key += StrFormat("@%d", stages[i].packed_bits);
    }
    if (stages[i].encoding ==
        static_cast<uint8_t>(ColumnEncoding::kRle)) {
      key += "~rle";
    }
  }
  if (count_only) key += "#count";
  if (!gathers.empty()) {
    key += "#gather:";
    for (size_t i = 0; i < gathers.size(); ++i) {
      if (i > 0) key += ',';
      key += ScanElementTypeToString(gathers[i].type);
      if (gathers[i].packed_bits != 0) {
        key += StrFormat("@%d", gathers[i].packed_bits);
      }
      if (gathers[i].dict) key += 'd';
    }
  }
  if (!aggs.empty()) {
    key += "#agg:";
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (i > 0) key += ',';
      key += AggOpToString(aggs[i].op);
      key += ScanElementTypeToString(aggs[i].type);
      switch (aggs[i].domain) {
        case AggDomain::kSigned:
          key += 's';
          break;
        case AggDomain::kUnsigned:
          key += 'u';
          break;
        case AggDomain::kFloat:
          key += 'f';
          break;
      }
    }
  }
  return key;
}

JitScanSignature SignatureForStages(const std::vector<ScanStage>& stages,
                                    int register_bits) {
  JitScanSignature signature;
  signature.register_bits = register_bits;
  signature.stages.reserve(stages.size());
  for (const ScanStage& stage : stages) {
    signature.stages.push_back({stage.type, stage.op, stage.packed_bits});
  }
  return signature;
}

StatusOr<JitScanSignature> SignatureForRleChain(
    const std::vector<CompressedScanStage>& compressed, int register_bits,
    bool count_only) {
  JitScanSignature signature;
  signature.register_bits = register_bits;
  signature.count_only = count_only;
  signature.stages.reserve(compressed.size());
  for (const CompressedScanStage& stage : compressed) {
    if (stage.column->encoding() != ColumnEncoding::kRle) {
      return Status::InvalidArgument(
          "JIT compressed chains cover RLE stages only");
    }
    FTS_ASSIGN_OR_RETURN(
        ScanElementType type,
        ScanElementTypeFromDataType(stage.column->data_type()));
    JitStageSignature stage_signature;
    stage_signature.type = type;
    stage_signature.op = stage.op;
    stage_signature.encoding = static_cast<uint8_t>(ColumnEncoding::kRle);
    signature.stages.push_back(stage_signature);
  }
  return signature;
}

StatusOr<JitScanSignature> SignatureForGatherTerms(const GatherTerm* terms,
                                                   size_t num_terms) {
  if (num_terms == 0 || num_terms > kMaxGatherTerms) {
    return Status::InvalidArgument(
        StrFormat("gather operator has %zu terms; supported range is 1..%zu",
                  num_terms, kMaxGatherTerms));
  }
  JitScanSignature signature;
  signature.gathers.reserve(num_terms);
  for (size_t t = 0; t < num_terms; ++t) {
    const GatherTerm& term = terms[t];
    const bool dict = term.dict != nullptr;
    if (!dict && term.packed_bits != 0 &&
        (term.type == ScanElementType::kF32 ||
         term.type == ScanElementType::kF64)) {
      return Status::InvalidArgument(
          "frame-of-reference gather terms decode integral elements only");
    }
    signature.gathers.push_back({term.type, term.packed_bits, dict});
  }
  return signature;
}

}  // namespace fts
