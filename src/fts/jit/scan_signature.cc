#include "fts/jit/scan_signature.h"

#include "fts/common/string_util.h"

namespace fts {

std::string JitScanSignature::CacheKey() const {
  std::string key = StrFormat("%d:", register_bits);
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) key += ';';
    key += ScanElementTypeToString(stages[i].type);
    key += CompareOpToString(stages[i].op);
    if (stages[i].packed_bits != 0) {
      key += StrFormat("@%d", stages[i].packed_bits);
    }
  }
  if (count_only) key += "#count";
  return key;
}

JitScanSignature SignatureForStages(const std::vector<ScanStage>& stages,
                                    int register_bits) {
  JitScanSignature signature;
  signature.register_bits = register_bits;
  signature.stages.reserve(stages.size());
  for (const ScanStage& stage : stages) {
    signature.stages.push_back({stage.type, stage.op, stage.packed_bits});
  }
  return signature;
}

}  // namespace fts
