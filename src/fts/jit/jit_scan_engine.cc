#include "fts/jit/jit_scan_engine.h"

#include <numeric>

#include "fts/common/cpu_info.h"
#include "fts/common/macros.h"

namespace fts {

JitScanEngine::JitScanEngine(int register_bits, JitCache* cache,
                             FallbackPolicy fallback)
    : register_bits_(register_bits), cache_(cache), fallback_(fallback) {
  FTS_CHECK(register_bits == 128 || register_bits == 256 ||
            register_bits == 512);
  FTS_CHECK(cache != nullptr);
}

template <typename T, typename Run>
StatusOr<T> JitScanEngine::RunLadder(ExecutionReport* report,
                                     const Run& run) {
  ExecutionReport local;
  if (report == nullptr) report = &local;
  report->requested = {ScanEngine::kJit, register_bits_};

  std::vector<EngineChoice> rungs;
  if (fallback_ == FallbackPolicy::kLadder) {
    rungs = DegradationLadder(ScanEngine::kJit, register_bits_);
  } else {
    rungs = {{ScanEngine::kJit, register_bits_}};
  }

  // A kUnavailable JIT failure (no AVX-512, no usable compiler) dooms every
  // JIT width; skip straight to the precompiled rungs in that case instead
  // of burning a compile attempt per width.
  bool jit_unavailable = false;
  Status last = Status::Unavailable("no scan engine could run");
  for (const EngineChoice& choice : rungs) {
    if (choice.engine == ScanEngine::kJit && jit_unavailable) {
      report->RecordFailure(choice, last);
      continue;
    }
    StatusOr<T> result = run(choice);
    if (result.ok()) {
      report->RecordSuccess(choice);
      return result;
    }
    report->RecordFailure(choice, result.status());
    if (choice.engine == ScanEngine::kJit &&
        result.status().code() == StatusCode::kUnavailable) {
      jit_unavailable = true;
    }
    last = result.status();
  }
  return last;
}

StatusOr<TableMatches> JitScanEngine::ExecuteJit(const TableScanner& scanner,
                                                 int register_bits) {
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    return Status::Unavailable(
        "JIT scan generates AVX-512 code; CPU lacks F/BW/DQ/VL");
  }

  TableMatches result;
  result.chunks.reserve(scanner.chunk_plans().size());
  for (ChunkId chunk_id = 0; chunk_id < scanner.chunk_plans().size();
       ++chunk_id) {
    const TableScanner::ChunkPlan& plan = scanner.chunk_plans()[chunk_id];
    ChunkMatches matches;
    matches.chunk_id = chunk_id;
    if (plan.impossible || plan.row_count == 0) {
      result.chunks.push_back(std::move(matches));
      continue;
    }
    if (plan.stages.empty()) {
      matches.positions.resize(plan.row_count);
      std::iota(matches.positions.begin(), matches.positions.end(), 0u);
      result.chunks.push_back(std::move(matches));
      continue;
    }

    // One compiled operator per chain signature; chunks of the same table
    // usually share it (dictionary rewrites can vary per chunk).
    const JitScanSignature signature =
        SignatureForStages(plan.stages, register_bits);
    FTS_ASSIGN_OR_RETURN(const JitCache::Entry entry,
                         cache_->GetOrCompile(signature));

    const void* columns[kMaxScanStages];
    alignas(8) unsigned char values[kMaxScanStages * kJitValueSlotBytes] = {};
    for (size_t s = 0; s < plan.stages.size(); ++s) {
      columns[s] = plan.stages[s].data;
      // ScanValue is an 8-byte union; copy its raw bits into the slot.
      static_assert(sizeof(ScanValue) == kJitValueSlotBytes);
      __builtin_memcpy(values + s * kJitValueSlotBytes,
                       &plan.stages[s].value, kJitValueSlotBytes);
    }

    PosList positions(plan.row_count + kScanOutputSlack);
    const size_t count =
        entry.fn(columns, values, plan.row_count, positions.data());
    positions.resize(count);
    matches.positions = std::move(positions);
    result.chunks.push_back(std::move(matches));
  }
  return result;
}

StatusOr<uint64_t> JitScanEngine::ExecuteJitCount(const TableScanner& scanner,
                                                  int register_bits) {
  // COUNT(*) compiles a dedicated count-only operator (no compress-store,
  // no output buffer) — the precise shape of the paper's benchmark query.
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    return Status::Unavailable(
        "JIT scan generates AVX-512 code; CPU lacks F/BW/DQ/VL");
  }

  uint64_t total = 0;
  for (const TableScanner::ChunkPlan& plan : scanner.chunk_plans()) {
    if (plan.impossible || plan.row_count == 0) continue;
    if (plan.stages.empty()) {
      total += plan.row_count;
      continue;
    }
    JitScanSignature signature =
        SignatureForStages(plan.stages, register_bits);
    signature.count_only = true;
    FTS_ASSIGN_OR_RETURN(const JitCache::Entry entry,
                         cache_->GetOrCompile(signature));

    const void* columns[kMaxScanStages];
    alignas(8) unsigned char values[kMaxScanStages * kJitValueSlotBytes] = {};
    for (size_t s = 0; s < plan.stages.size(); ++s) {
      columns[s] = plan.stages[s].data;
      __builtin_memcpy(values + s * kJitValueSlotBytes,
                       &plan.stages[s].value, kJitValueSlotBytes);
    }
    // Count-only operators never touch the output buffer.
    total += entry.fn(columns, values, plan.row_count, nullptr);
  }
  return total;
}

StatusOr<TableMatches> JitScanEngine::Execute(TablePtr table,
                                              const ScanSpec& spec,
                                              ExecutionReport* report) {
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(std::move(table), spec));
  return RunLadder<TableMatches>(
      report, [&](const EngineChoice& choice) -> StatusOr<TableMatches> {
        if (choice.engine == ScanEngine::kJit) {
          return ExecuteJit(scanner, choice.jit_register_bits);
        }
        return scanner.Execute(choice.engine);
      });
}

StatusOr<uint64_t> JitScanEngine::ExecuteCount(TablePtr table,
                                               const ScanSpec& spec,
                                               ExecutionReport* report) {
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(std::move(table), spec));
  return RunLadder<uint64_t>(
      report, [&](const EngineChoice& choice) -> StatusOr<uint64_t> {
        if (choice.engine == ScanEngine::kJit) {
          return ExecuteJitCount(scanner, choice.jit_register_bits);
        }
        return scanner.ExecuteCount(choice.engine);
      });
}

}  // namespace fts
