#include "fts/jit/jit_scan_engine.h"

#include <algorithm>
#include <numeric>

#include "fts/common/cpu_info.h"
#include "fts/common/macros.h"
#include "fts/jit/code_generator.h"
#include "fts/obs/metrics.h"
#include "fts/obs/trace.h"
#include "fts/simd/kernels_scalar.h"
#include "fts/storage/data_type.h"
#include "fts/storage/rle_column.h"

namespace fts {

namespace {

// Fills the generated RLE operator's per-stage views and search-value
// slots from a compressed chain (every stage already proven RLE by
// SignatureForRleChain).
void MarshalRleStages(const TableScanner::ChunkPlan& plan,
                      const JitScanSignature& signature, JitRleView* views,
                      const void** columns, unsigned char* values) {
  for (size_t s = 0; s < plan.compressed.size(); ++s) {
    const CompressedScanStage& stage = plan.compressed[s];
    DispatchDataType(stage.column->data_type(), [&](auto tag) {
      using T = decltype(tag);
      const auto& column = static_cast<const RleColumn<T>&>(*stage.column);
      views[s].run_values = column.run_values().data();
      views[s].run_ends = column.run_ends().data();
      views[s].run_count = column.run_count();
    });
    columns[s] = &views[s];
    const ScanValue value =
        MakeScanValue(signature.stages[s].type, stage.value);
    static_assert(sizeof(ScanValue) == kJitValueSlotBytes);
    __builtin_memcpy(values + s * kJitValueSlotBytes, &value,
                     kJitValueSlotBytes);
  }
}

// The generated operator classifies runs inline and reports no breakdown;
// credit every stage's runs as classified so the compressed-domain
// counters stay meaningful when JIT serves the chunk.
void CreditRleRuns(const TableScanner::ChunkPlan& plan,
                   AtomicCompressedStats* compressed_stats) {
  if (compressed_stats == nullptr) return;
  CompressedScanStats credit;
  for (const CompressedScanStage& stage : plan.compressed) {
    DispatchDataType(stage.column->data_type(), [&](auto tag) {
      using T = decltype(tag);
      credit.rle_runs_classified +=
          static_cast<const RleColumn<T>&>(*stage.column).run_count();
    });
  }
  compressed_stats->Add(credit);
}

}  // namespace

StatusOr<size_t> JitExecuteChunk(JitCache& cache,
                                 const TableScanner::ChunkPlan& plan,
                                 int register_bits, bool count_only,
                                 ChunkOffset* out, JitChunkStats* stats,
                                 QueryContext* ctx,
                                 AtomicCompressedStats* compressed_stats) {
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    return Status::Unavailable(
        "JIT scan generates AVX-512 code; CPU lacks F/BW/DQ/VL");
  }
  if (plan.impossible || plan.row_count == 0) return size_t{0};
  if (!plan.compressed.empty()) {
    if (!plan.stages.empty()) {
      return Status::InvalidArgument(
          "JIT compiles all-RLE chains only; mixed compressed/kernel "
          "chunks run on the interpreted range path");
    }
    FTS_ASSIGN_OR_RETURN(
        JitScanSignature signature,
        SignatureForRleChain(plan.compressed, register_bits, count_only));
    FTS_ASSIGN_OR_RETURN(const JitCache::Entry entry,
                         cache.GetOrCompile(signature, ctx));
    if (stats != nullptr) {
      stats->compile_millis += entry.compile_millis;
      if (entry.cache_hit) {
        ++stats->cache_hits;
      } else {
        ++stats->cache_misses;
      }
    }
    JitRleView views[kMaxScanStages];
    const void* columns[kMaxScanStages];
    alignas(8) unsigned char values[kMaxScanStages * kJitValueSlotBytes] =
        {};
    MarshalRleStages(plan, signature, views, columns, values);
    obs::TraceSpan span("scan_chunk", "scan");
    const size_t count = entry.fn(columns, values, plan.row_count,
                                  count_only ? nullptr : out);
    CreditRleRuns(plan, compressed_stats);
    {
      const obs::EngineMetrics& metrics = obs::Metrics();
      metrics.rows_scanned_total->Add(plan.row_count);
      metrics.rows_emitted_total->Add(count);
      EngineExecutionCounter(ScanEngine::kJit)->Increment();
    }
    if (span.active()) {
      span.AddArg("engine", "JIT Fused (RLE)");
      span.AddArg("register_bits", static_cast<uint64_t>(register_bits));
      span.AddArg("rows", static_cast<uint64_t>(plan.row_count));
      span.AddArg("matches", static_cast<uint64_t>(count));
    }
    return count;
  }
  if (plan.stages.empty()) {
    if (!count_only) std::iota(out, out + plan.row_count, ChunkOffset{0});
    return plan.row_count;
  }

  // One compiled operator per chain signature; chunks of the same table
  // usually share it (dictionary rewrites can vary per chunk).
  JitScanSignature signature = SignatureForStages(plan.stages, register_bits);
  signature.count_only = count_only;
  FTS_ASSIGN_OR_RETURN(const JitCache::Entry entry,
                       cache.GetOrCompile(signature, ctx));
  if (stats != nullptr) {
    stats->compile_millis += entry.compile_millis;
    if (entry.cache_hit) {
      ++stats->cache_hits;
    } else {
      ++stats->cache_misses;
    }
  }

  const void* columns[kMaxScanStages];
  alignas(8) unsigned char values[kMaxScanStages * kJitValueSlotBytes] = {};
  for (size_t s = 0; s < plan.stages.size(); ++s) {
    columns[s] = plan.stages[s].data;
    // ScanValue is an 8-byte union; copy its raw bits into the slot.
    static_assert(sizeof(ScanValue) == kJitValueSlotBytes);
    __builtin_memcpy(values + s * kJitValueSlotBytes, &plan.stages[s].value,
                     kJitValueSlotBytes);
  }
  obs::TraceSpan span("scan_chunk", "scan");
  // Count-only operators never touch the output buffer.
  const size_t count =
      entry.fn(columns, values, plan.row_count, count_only ? nullptr : out);
  {
    const obs::EngineMetrics& metrics = obs::Metrics();
    metrics.rows_scanned_total->Add(plan.row_count);
    metrics.rows_emitted_total->Add(count);
    EngineExecutionCounter(ScanEngine::kJit)->Increment();
  }
  if (span.active()) {
    span.AddArg("engine", "JIT Fused");
    span.AddArg("register_bits", static_cast<uint64_t>(register_bits));
    span.AddArg("rows", static_cast<uint64_t>(plan.row_count));
    span.AddArg("matches", static_cast<uint64_t>(count));
  }
  return count;
}

StatusOr<size_t> JitExecuteChunkAggregate(JitCache& cache,
                                          const TableScanner::ChunkPlan& plan,
                                          int register_bits,
                                          AggAccumulator* accs,
                                          JitChunkStats* stats,
                                          QueryContext* ctx) {
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    return Status::Unavailable(
        "JIT scan generates AVX-512 code; CPU lacks F/BW/DQ/VL");
  }
  const size_t num_terms = plan.agg_terms.size();
  if (num_terms == 0) {
    return Status::InvalidArgument("chunk plan carries no aggregate terms");
  }
  for (size_t i = 0; i < num_terms; ++i) accs[i] = AggAccumulator{};
  if (plan.impossible || plan.row_count == 0) return size_t{0};
  if (plan.agg_zone_shortcut) {
    std::copy(plan.agg_zone_partials.begin(), plan.agg_zone_partials.end(),
              accs);
    return plan.row_count;
  }
  if (!plan.compressed.empty()) {
    // The static engines materialize the compressed chain's positions and
    // fold row-wise; no generated aggregate operator covers that shape.
    return Status::InvalidArgument(
        "JIT aggregate operators do not cover compressed-domain chains");
  }
  for (const AggTerm& term : plan.agg_terms) {
    if (term.dict != nullptr || term.packed_bits != 0) {
      // The ladder demotes this morsel to the static kernels, which fold
      // dictionary / bit-packed terms through their scalar decode path.
      return Status::InvalidArgument(
          "JIT aggregate operators fold plain columns only");
    }
  }
  if (plan.stages.empty()) {
    // Every row matches and there is no chain to specialize; the scalar
    // reference fold is already a tight typed loop.
    return FusedAggScanScalar(nullptr, 0, plan.row_count,
                              plan.agg_terms.data(), num_terms, accs);
  }

  JitScanSignature signature = SignatureForStages(plan.stages, register_bits);
  signature.aggs.reserve(num_terms);
  for (const AggTerm& term : plan.agg_terms) {
    signature.aggs.push_back({term.op, term.type, term.domain});
  }
  FTS_ASSIGN_OR_RETURN(const JitCache::Entry entry,
                       cache.GetOrCompile(signature, ctx));
  if (stats != nullptr) {
    stats->compile_millis += entry.compile_millis;
    if (entry.cache_hit) {
      ++stats->cache_hits;
    } else {
      ++stats->cache_misses;
    }
  }

  const void* columns[kMaxScanStages + kMaxAggTerms];
  alignas(8) unsigned char values[kMaxScanStages * kJitValueSlotBytes] = {};
  FTS_CHECK(plan.stages.size() <= kMaxScanStages);
  for (size_t s = 0; s < plan.stages.size(); ++s) {
    columns[s] = plan.stages[s].data;
    static_assert(sizeof(ScanValue) == kJitValueSlotBytes);
    __builtin_memcpy(values + s * kJitValueSlotBytes, &plan.stages[s].value,
                     kJitValueSlotBytes);
  }
  // Aggregate columns ride after the stage columns (null for COUNT terms;
  // the generated code never reads those slots).
  for (size_t t = 0; t < num_terms; ++t) {
    columns[plan.stages.size() + t] = plan.agg_terms[t].data;
  }
  obs::TraceSpan span("scan_chunk_agg", "scan");
  // The accumulator array doubles as the generated operator's `out`
  // argument; its layout is mirrored field-for-field in generated code.
  const size_t count =
      entry.fn(columns, values, plan.row_count,
               reinterpret_cast<uint32_t*>(accs));
  {
    const obs::EngineMetrics& metrics = obs::Metrics();
    metrics.rows_scanned_total->Add(plan.row_count);
    metrics.rows_emitted_total->Add(count);
    EngineExecutionCounter(ScanEngine::kJit)->Increment();
  }
  if (span.active()) {
    span.AddArg("engine", "JIT Fused");
    span.AddArg("register_bits", static_cast<uint64_t>(register_bits));
    span.AddArg("rows", static_cast<uint64_t>(plan.row_count));
    span.AddArg("matches", static_cast<uint64_t>(count));
  }
  return count;
}

StatusOr<size_t> JitExecuteChunkGather(JitCache& cache,
                                       const GatherTerm* terms,
                                       size_t num_terms,
                                       const ChunkOffset* positions, size_t n,
                                       void* const* outs,
                                       JitChunkStats* stats,
                                       QueryContext* ctx) {
  FTS_ASSIGN_OR_RETURN(const JitScanSignature signature,
                       SignatureForGatherTerms(terms, num_terms));
  FTS_ASSIGN_OR_RETURN(const JitCache::Entry entry,
                       cache.GetOrCompile(signature, ctx));
  if (stats != nullptr) {
    stats->compile_millis += entry.compile_millis;
    if (entry.cache_hit) {
      ++stats->cache_hits;
    } else {
      ++stats->cache_misses;
    }
  }
  if (n == 0) return size_t{0};

  JitGatherView views[kMaxGatherTerms];
  const void* columns[kMaxGatherTerms];
  for (size_t t = 0; t < num_terms; ++t) {
    views[t].data = terms[t].data;
    views[t].dict = terms[t].dict;
    views[t].out = outs[t];
    views[t].base_bits = terms[t].base_bits;
    columns[t] = &views[t];
  }
  obs::TraceSpan span("gather_chunk", "scan");
  // The position list rides in the `values` slot of the scan ABI; `out`
  // is unused (destinations live in the views).
  const size_t count = entry.fn(columns, positions, n, nullptr);
  if (span.active()) {
    span.AddArg("engine", "JIT Gather");
    span.AddArg("terms", static_cast<uint64_t>(num_terms));
    span.AddArg("rows", static_cast<uint64_t>(n));
  }
  return count;
}

JitScanEngine::JitScanEngine(int register_bits, JitCache* cache,
                             FallbackPolicy fallback)
    : register_bits_(register_bits), cache_(cache), fallback_(fallback) {
  FTS_CHECK(register_bits == 128 || register_bits == 256 ||
            register_bits == 512);
  FTS_CHECK(cache != nullptr);
}

template <typename T, typename Run>
StatusOr<T> JitScanEngine::RunLadder(QueryContext* ctx,
                                     ExecutionReport* report,
                                     const Run& run) {
  ExecutionReport local;
  if (report == nullptr) report = &local;
  report->requested = {ScanEngine::kJit, register_bits_};

  std::vector<EngineChoice> rungs;
  if (fallback_ == FallbackPolicy::kLadder) {
    rungs = DegradationLadder(ScanEngine::kJit, register_bits_);
  } else {
    rungs = {{ScanEngine::kJit, register_bits_}};
  }

  // A kUnavailable JIT failure (no AVX-512, no usable compiler) dooms every
  // JIT width; skip straight to the precompiled rungs in that case instead
  // of burning a compile attempt per width.
  bool jit_unavailable = false;
  Status last = Status::Unavailable("no scan engine could run");
  for (const EngineChoice& choice : rungs) {
    if (choice.engine == ScanEngine::kJit && jit_unavailable) {
      report->RecordFailure(choice, last);
      continue;
    }
    StatusOr<T> result = run(choice);
    if (result.ok()) {
      report->RecordSuccess(choice);
      return result;
    }
    report->RecordFailure(choice, result.status());
    // A canceled context stops the walk: lower rungs would fail at their
    // first cancellation point too. This is distinct from the compile-
    // budget floor, which returns kDeadlineExceeded *without* canceling
    // the context precisely so the ladder demotes past it.
    if (ctx != nullptr && ctx->cancelled()) {
      return result.status();
    }
    if (choice.engine == ScanEngine::kJit &&
        result.status().code() == StatusCode::kUnavailable) {
      jit_unavailable = true;
    }
    last = result.status();
  }
  return last;
}

StatusOr<TableMatches> JitScanEngine::ExecuteJit(const TableScanner& scanner,
                                                 int register_bits,
                                                 JitChunkStats* stats) {
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    return Status::Unavailable(
        "JIT scan generates AVX-512 code; CPU lacks F/BW/DQ/VL");
  }
  QueryContext* ctx = scanner.context();
  TableMatches result;
  result.chunks.reserve(scanner.chunk_plans().size());
  // Once one chunk's chain has compiled, further chunks with kernel chains
  // are near-certain cache hits (chunks of one table share the chain
  // signature unless re-ranking split them), so the model stops charging
  // them the amortized compile cost.
  bool jit_warm = false;
  for (ChunkId chunk_id = 0; chunk_id < scanner.chunk_plans().size();
       ++chunk_id) {
    FTS_RETURN_IF_ERROR(CheckCancellation(ctx));
    const TableScanner::ChunkPlan& plan = scanner.chunk_plans()[chunk_id];
    ChunkMatches matches;
    matches.chunk_id = chunk_id;
    if (!plan.impossible && plan.row_count > 0) {
      ScopedMemoryReservation reservation;
      FTS_RETURN_IF_ERROR(reservation.Reserve(
          ctx, static_cast<uint64_t>(plan.row_count + kScanOutputSlack) *
                   sizeof(ChunkOffset)));
      PosList positions(plan.row_count + kScanOutputSlack);
      const EngineChoice pick = scanner.AdaptEngine(
          EngineChoice{ScanEngine::kJit, register_bits}, chunk_id,
          cost::ScanMode::kMaterialize, jit_warm);
      size_t count = 0;
      if (pick.engine == ScanEngine::kJit) {
        FTS_ASSIGN_OR_RETURN(
            count,
            JitExecuteChunk(*cache_, plan, register_bits,
                            /*count_only=*/false, positions.data(), stats,
                            ctx, scanner.compressed_stats().get()));
        if (!plan.stages.empty()) jit_warm = true;
      } else {
        FTS_ASSIGN_OR_RETURN(
            count, scanner.ExecuteChunk(pick.engine, chunk_id,
                                        positions.data()));
      }
      positions.resize(count);
      matches.positions = std::move(positions);
    }
    result.chunks.push_back(std::move(matches));
  }
  return result;
}

StatusOr<uint64_t> JitScanEngine::ExecuteJitCount(const TableScanner& scanner,
                                                  int register_bits,
                                                  JitChunkStats* stats) {
  // COUNT(*) compiles a dedicated count-only operator (no compress-store,
  // no output buffer) — the precise shape of the paper's benchmark query.
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    return Status::Unavailable(
        "JIT scan generates AVX-512 code; CPU lacks F/BW/DQ/VL");
  }
  QueryContext* ctx = scanner.context();
  uint64_t total = 0;
  bool jit_warm = false;
  for (ChunkId chunk_id = 0; chunk_id < scanner.chunk_plans().size();
       ++chunk_id) {
    FTS_RETURN_IF_ERROR(CheckCancellation(ctx));
    const TableScanner::ChunkPlan& plan = scanner.chunk_plans()[chunk_id];
    const EngineChoice pick = scanner.AdaptEngine(
        EngineChoice{ScanEngine::kJit, register_bits}, chunk_id,
        cost::ScanMode::kCount, jit_warm);
    size_t count = 0;
    if (pick.engine == ScanEngine::kJit) {
      FTS_ASSIGN_OR_RETURN(
          count, JitExecuteChunk(*cache_, plan, register_bits,
                                 /*count_only=*/true, nullptr, stats, ctx,
                                 scanner.compressed_stats().get()));
      if (!plan.impossible && !plan.stages.empty()) jit_warm = true;
    } else {
      FTS_ASSIGN_OR_RETURN(count,
                           scanner.ExecuteChunkCount(pick.engine, chunk_id));
    }
    total += count;
  }
  return total;
}

StatusOr<TableScanner::AggResult> JitScanEngine::ExecuteJitAggregate(
    const TableScanner& scanner, int register_bits, JitChunkStats* stats) {
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    return Status::Unavailable(
        "JIT scan generates AVX-512 code; CPU lacks F/BW/DQ/VL");
  }
  QueryContext* ctx = scanner.context();
  TableScanner::AggResult result;
  result.accumulators.resize(scanner.num_agg_terms());
  std::vector<AggAccumulator> partial(scanner.num_agg_terms());
  bool jit_warm = false;
  for (ChunkId chunk_id = 0; chunk_id < scanner.chunk_plans().size();
       ++chunk_id) {
    const TableScanner::ChunkPlan& plan = scanner.chunk_plans()[chunk_id];
    if (plan.impossible || plan.row_count == 0) continue;
    FTS_RETURN_IF_ERROR(CheckCancellation(ctx));
    const EngineChoice pick = scanner.AdaptEngine(
        EngineChoice{ScanEngine::kJit, register_bits}, chunk_id,
        cost::ScanMode::kAggregate, jit_warm);
    size_t count = 0;
    if (pick.engine == ScanEngine::kJit) {
      FTS_ASSIGN_OR_RETURN(
          count, JitExecuteChunkAggregate(*cache_, plan, register_bits,
                                          partial.data(), stats, ctx));
      if (!plan.stages.empty()) jit_warm = true;
    } else {
      FTS_ASSIGN_OR_RETURN(
          count, scanner.ExecuteChunkAggregate(pick.engine, chunk_id,
                                               partial.data()));
    }
    result.matched += count;
    for (size_t i = 0; i < partial.size(); ++i) {
      result.accumulators[i].Merge(partial[i]);
    }
  }
  return result;
}

StatusOr<TableMatches> JitScanEngine::Execute(TablePtr table,
                                              const ScanSpec& spec,
                                              ExecutionReport* report) {
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(std::move(table), spec));
  if (report != nullptr) {
    FillPruningReport(scanner, report);
    FillCompressedReport(scanner, report);
    FillAdaptiveReport(scanner, report);
  }
  JitChunkStats stats;
  StatusOr<TableMatches> result = RunLadder<TableMatches>(
      scanner.context(), report,
      [&](const EngineChoice& choice) -> StatusOr<TableMatches> {
        if (choice.engine == ScanEngine::kJit) {
          return ExecuteJit(scanner, choice.jit_register_bits, &stats);
        }
        return scanner.Execute(choice.engine);
      });
  if (report != nullptr) {
    report->jit_compile_millis += stats.compile_millis;
    report->jit_cache_hits += stats.cache_hits;
    report->jit_cache_misses += stats.cache_misses;
    // Refresh: run counters accumulated during execution.
    FillCompressedReport(scanner, report);
    FillAdaptiveReport(scanner, report);
  }
  return result;
}

StatusOr<uint64_t> JitScanEngine::ExecuteCount(TablePtr table,
                                               const ScanSpec& spec,
                                               ExecutionReport* report) {
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(std::move(table), spec));
  if (report != nullptr) {
    FillPruningReport(scanner, report);
    FillCompressedReport(scanner, report);
    FillAdaptiveReport(scanner, report);
  }
  JitChunkStats stats;
  StatusOr<uint64_t> result = RunLadder<uint64_t>(
      scanner.context(), report,
      [&](const EngineChoice& choice) -> StatusOr<uint64_t> {
        if (choice.engine == ScanEngine::kJit) {
          return ExecuteJitCount(scanner, choice.jit_register_bits, &stats);
        }
        return scanner.ExecuteCount(choice.engine);
      });
  if (report != nullptr) {
    report->jit_compile_millis += stats.compile_millis;
    report->jit_cache_hits += stats.cache_hits;
    report->jit_cache_misses += stats.cache_misses;
    // Refresh: run counters accumulated during execution.
    FillCompressedReport(scanner, report);
    FillAdaptiveReport(scanner, report);
  }
  return result;
}

StatusOr<TableScanner::AggResult> JitScanEngine::ExecuteAggregate(
    TablePtr table, const ScanSpec& spec, ExecutionReport* report) {
  if (spec.aggregates.empty()) {
    return Status::InvalidArgument(
        "ExecuteAggregate requires at least one aggregate");
  }
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(std::move(table), spec));
  if (report != nullptr) {
    FillPruningReport(scanner, report);
    FillCompressedReport(scanner, report);
    FillAdaptiveReport(scanner, report);
  }
  JitChunkStats stats;
  StatusOr<TableScanner::AggResult> result =
      RunLadder<TableScanner::AggResult>(
          scanner.context(), report,
          [&](const EngineChoice& choice)
              -> StatusOr<TableScanner::AggResult> {
            if (choice.engine == ScanEngine::kJit) {
              return ExecuteJitAggregate(scanner, choice.jit_register_bits,
                                         &stats);
            }
            return scanner.ExecuteAggregate(choice.engine);
          });
  if (report != nullptr) {
    report->jit_compile_millis += stats.compile_millis;
    report->jit_cache_hits += stats.cache_hits;
    report->jit_cache_misses += stats.cache_misses;
    // Refresh: run counters accumulated during execution.
    FillCompressedReport(scanner, report);
    FillAdaptiveReport(scanner, report);
  }
  return result;
}

}  // namespace fts
