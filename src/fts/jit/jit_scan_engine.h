#ifndef FTS_JIT_JIT_SCAN_ENGINE_H_
#define FTS_JIT_JIT_SCAN_ENGINE_H_

#include "fts/common/status.h"
#include "fts/jit/jit_cache.h"
#include "fts/scan/scan_spec.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/pos_list.h"
#include "fts/storage/table.h"

namespace fts {

// Executes conjunctive scans through runtime-generated code (Section V).
// Reuses TableScanner::Prepare for column resolution / value casting /
// dictionary predicate rewriting, then compiles (or fetches from the
// cache) one specialized operator per distinct chain signature and runs it
// per chunk.
class JitScanEngine {
 public:
  // `register_bits` selects the generated code's register width
  // (128/256/512); `cache` defaults to the process-wide cache.
  explicit JitScanEngine(int register_bits = 512,
                         JitCache* cache = &GlobalJitCache());

  StatusOr<TableMatches> Execute(TablePtr table, const ScanSpec& spec);

  StatusOr<uint64_t> ExecuteCount(TablePtr table, const ScanSpec& spec);

  int register_bits() const { return register_bits_; }
  JitCache& cache() { return *cache_; }

 private:
  int register_bits_;
  JitCache* cache_;
};

}  // namespace fts

#endif  // FTS_JIT_JIT_SCAN_ENGINE_H_
