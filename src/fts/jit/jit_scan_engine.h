#ifndef FTS_JIT_JIT_SCAN_ENGINE_H_
#define FTS_JIT_JIT_SCAN_ENGINE_H_

#include "fts/common/status.h"
#include "fts/jit/jit_cache.h"
#include "fts/scan/scan_engine.h"
#include "fts/scan/scan_spec.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/pos_list.h"
#include "fts/storage/table.h"

namespace fts {

// Per-call JIT attribution, accumulated across chunk executions so a
// query's ExecutionReport can split compile time from scan time.
struct JitChunkStats {
  double compile_millis = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  void Merge(const JitChunkStats& other) {
    compile_millis += other.compile_millis;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
  }
};

// Runs one chunk's prepared plan through a JIT-compiled operator — the
// morsel primitive shared by JitScanEngine and the parallel executor
// (fts/exec/parallel_scan.h). Compiles (or fetches from `cache`) the
// operator for the chunk's chain signature at `register_bits`. In
// count-only mode `out` may be null and the return value is the match
// count; otherwise `out` must have capacity for row_count +
// kScanOutputSlack positions. When `stats` is non-null, cache/compile
// attribution for this call is accumulated into it. Thread-safe: JitCache
// single-flights concurrent compiles of one signature. `ctx` (nullable)
// makes the compile lifecycle-aware (budget floor, kill on cancel); the
// generated kernel itself is uninterruptible once running.
//
// Chunks whose plan carries compressed-domain stages compile the all-RLE
// run-coiteration operator when every predicate is an RLE stage and the
// chain has no kernel stages; anything else (delta stages, mixed chains)
// returns InvalidArgument so the ladder demotes the morsel to the
// interpreted range path the static engines share. `compressed_stats`
// (nullable) receives the run-classification credit for such chunks —
// pass the scanner's accumulator so EXPLAIN counters cover JIT morsels.
StatusOr<size_t> JitExecuteChunk(
    JitCache& cache, const TableScanner::ChunkPlan& plan, int register_bits,
    bool count_only, ChunkOffset* out, JitChunkStats* stats = nullptr,
    QueryContext* ctx = nullptr,
    AtomicCompressedStats* compressed_stats = nullptr);

// Aggregate-pushdown morsel primitive: compiles (or fetches) a specialized
// operator that folds the chunk's aggregate terms at every emission site
// and writes the partials into `accs` (one slot per term, reset here).
// Zone-shortcut chunks are answered without compiling anything. Only plain
// aggregate columns are JIT-eligible; dictionary / bit-packed terms return
// InvalidArgument so the per-morsel ladder demotes to the static kernels.
StatusOr<size_t> JitExecuteChunkAggregate(JitCache& cache,
                                          const TableScanner::ChunkPlan& plan,
                                          int register_bits,
                                          AggAccumulator* accs,
                                          JitChunkStats* stats = nullptr,
                                          QueryContext* ctx = nullptr);

// Batch-gather morsel primitive of the late-materialization projection:
// compiles (or fetches) the gather-only operator for `terms`' shape
// signature and materializes the `n` ascending survivor `positions` of
// one chunk into `outs` — one dense typed destination slice per term,
// every projected column written in a single generated pass. The terms
// are the chunk's kernel-eligible gather terms in output-column order
// (ProjectionGatherer::KernelTermFor); the generated code burns in each
// column's shape (plain / dictionary / bit-packed / frame-of-reference)
// and leaves pointers, decode tables and FoR bases as runtime arguments,
// so chunks and queries with matching column shapes share one compiled
// module. Unlike the scan operators this code is scalar (no AVX-512
// requirement); the JIT win is eliminating the per-column kernel
// dispatch and fusing the passes. Returns `n`.
StatusOr<size_t> JitExecuteChunkGather(JitCache& cache,
                                       const GatherTerm* terms,
                                       size_t num_terms,
                                       const ChunkOffset* positions, size_t n,
                                       void* const* outs,
                                       JitChunkStats* stats = nullptr,
                                       QueryContext* ctx = nullptr);

// Executes conjunctive scans through runtime-generated code (Section V).
// Reuses TableScanner::Prepare for column resolution / value casting /
// dictionary predicate rewriting, then compiles (or fetches from the
// cache) one specialized operator per distinct chain signature and runs it
// per chunk.
//
// With FallbackPolicy::kLadder (default) a failing JIT path — compiler
// missing, compile error/timeout, dlopen failure, CPU without AVX-512 —
// degrades instead of failing the scan: narrower JIT widths first, then
// the precompiled engines (AVX-512 fused -> AVX2 -> scalar fused -> SISD).
// Every demotion is recorded in the caller-provided ExecutionReport. With
// FallbackPolicy::kStrict the first failure is returned as-is.
class JitScanEngine {
 public:
  // `register_bits` selects the generated code's register width
  // (128/256/512); `cache` defaults to the process-wide cache.
  explicit JitScanEngine(int register_bits = 512,
                         JitCache* cache = &GlobalJitCache(),
                         FallbackPolicy fallback = FallbackPolicy::kLadder);

  StatusOr<TableMatches> Execute(TablePtr table, const ScanSpec& spec,
                                 ExecutionReport* report = nullptr);

  StatusOr<uint64_t> ExecuteCount(TablePtr table, const ScanSpec& spec,
                                  ExecutionReport* report = nullptr);

  // Aggregate pushdown: spec.aggregates must be non-empty. JIT morsels
  // compile specialized aggregate operators; ladder rungs below JIT run
  // the static aggregate kernels.
  StatusOr<TableScanner::AggResult> ExecuteAggregate(
      TablePtr table, const ScanSpec& spec,
      ExecutionReport* report = nullptr);

  int register_bits() const { return register_bits_; }
  FallbackPolicy fallback() const { return fallback_; }
  JitCache& cache() { return *cache_; }

 private:
  // The pure JIT path at one register width; fails without fallback.
  // `stats` accumulates cache/compile attribution across chunks.
  StatusOr<TableMatches> ExecuteJit(const TableScanner& scanner,
                                    int register_bits, JitChunkStats* stats);
  StatusOr<uint64_t> ExecuteJitCount(const TableScanner& scanner,
                                     int register_bits, JitChunkStats* stats);
  StatusOr<TableScanner::AggResult> ExecuteJitAggregate(
      const TableScanner& scanner, int register_bits, JitChunkStats* stats);

  // Walks the ladder (or just the first rung under kStrict), recording
  // attempts into `report`. `run` maps an EngineChoice to a result.
  // `ctx` (nullable) separates demotion from abort: a rung failing with
  // the compile-budget floor demotes, but a context actually canceled
  // (explicit cancel or expired deadline) stops the walk — retrying lower
  // rungs for a dead query would just re-fail at their first boundary.
  template <typename T, typename Run>
  StatusOr<T> RunLadder(QueryContext* ctx, ExecutionReport* report,
                        const Run& run);

  int register_bits_;
  JitCache* cache_;
  FallbackPolicy fallback_;
};

}  // namespace fts

#endif  // FTS_JIT_JIT_SCAN_ENGINE_H_
