#ifndef FTS_JIT_COMPILER_DRIVER_H_
#define FTS_JIT_COMPILER_DRIVER_H_

#include <sys/types.h>

#include <memory>
#include <mutex>
#include <string>

#include "fts/common/query_context.h"
#include "fts/common/status.h"

namespace fts {

// Fault-injection points (fts/common/fault_injection.h) exercised by the
// compiler driver; arm them via FTS_FAULT to simulate every way the JIT
// path can fail in production without breaking the real toolchain.
inline constexpr char kFaultJitCompilerMissing[] = "jit.compiler_missing";
inline constexpr char kFaultJitCompileError[] = "jit.compile_error";
inline constexpr char kFaultJitCompileTimeout[] = "jit.compile_timeout";
inline constexpr char kFaultJitSpawnTransient[] = "jit.spawn_transient";
inline constexpr char kFaultJitDlopenFail[] = "jit.dlopen_fail";
inline constexpr char kFaultJitSymbolMissing[] = "jit.symbol_missing";

// A loaded shared object produced by the JIT. Owns the dlopen handle; the
// resolved symbol stays valid for the module's lifetime.
class JitModule {
 public:
  ~JitModule();
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;

  // Raw function pointer for `symbol` passed at compile time.
  void* symbol_address() const { return symbol_; }

  // Wall-clock cost of the external compiler + dlopen, for the Section V
  // discussion ("we do not see the additional compile time as a deciding
  // bottleneck" when operators are cached).
  double compile_millis() const { return compile_millis_; }

  const std::string& source() const { return source_; }

 private:
  friend class JitCompiler;
  JitModule() = default;

  void* handle_ = nullptr;
  void* symbol_ = nullptr;
  double compile_millis_ = 0.0;
  std::string source_;
};

// Options for the external-compiler JIT backend. The paper's Section V
// weighs C++ vs LLVM IR vs ASM for generation and picks C++ ("easier to
// write and maintain"); this driver realizes that choice: generated C++ is
// compiled by the system compiler into a shared object and dlopen()ed.
struct JitCompilerOptions {
  // Compiler binary; overridden by the FTS_JIT_CXX environment variable.
  std::string compiler = "g++";
  // Flags for the generated TU. The AVX-512 sources need the f/bw/dq/vl
  // sets; -O3 matches the paper's build.
  std::string flags =
      "-std=c++20 -O3 -shared -fPIC -mavx512f -mavx512bw -mavx512dq "
      "-mavx512vl";
  // Directory for temporary artifacts; empty = /tmp.
  std::string work_dir;
  // Keep the .cpp/.so/compile log on disk (debugging) — on failure too.
  bool keep_artifacts = false;
  // Wall-clock budget for one compiler invocation. On expiry the compiler
  // process is SIGKILLed and reaped (no orphans) and Compile returns
  // kDeadlineExceeded. Overridden by FTS_JIT_COMPILE_TIMEOUT_MS; <= 0
  // disables the deadline.
  int64_t compile_timeout_millis = 30000;
  // Bounded retry for transient spawn failures (fork reporting EAGAIN or
  // ENOMEM under load): total attempts, and the backoff before the first
  // retry (doubled after each).
  int max_spawn_attempts = 3;
  int64_t retry_backoff_millis = 10;
};

class JitCompiler {
 public:
  explicit JitCompiler(JitCompilerOptions options = JitCompilerOptions());

  // waitpid bookkeeping for the most recent child compiler process this
  // driver spawned. Tests assert the cancellation path leaves no zombies:
  // after a canceled compile, `killed` and `reaped` are both true and
  // kill(pid, 0) reports ESRCH.
  struct ChildStats {
    pid_t pid = -1;
    bool killed = false;  // SIGKILLed by deadline/cancellation.
    bool reaped = false;  // waitpid() collected the exit status.
  };

  // Compiles `source` and resolves `symbol`. Error surface:
  //   kUnavailable      — the compiler binary cannot be executed;
  //   kDeadlineExceeded — the compiler exceeded compile_timeout_millis (or
  //                       the query's deadline fired mid-compile) and was
  //                       killed;
  //   kQueryCanceled    — `ctx` was canceled mid-compile; the compiler
  //                       process was SIGKILLed and reaped;
  //   kInternal         — compile error (with the compiler's stderr),
  //                       dlopen or symbol-resolution failure.
  // Scratch artifacts are removed on every path unless keep_artifacts —
  // including the kill paths, so a canceled query orphans no files.
  // `ctx` (nullable) is polled between waitpid probes, so an in-flight
  // compiler dies within one poll interval of cancellation.
  StatusOr<std::shared_ptr<JitModule>> Compile(const std::string& source,
                                               const std::string& symbol,
                                               QueryContext* ctx = nullptr);

  ChildStats last_child() const {
    std::lock_guard<std::mutex> lock(child_mutex_);
    return last_child_;
  }

  const JitCompilerOptions& options() const { return options_; }

 private:
  void RecordChild(const ChildStats& child) {
    std::lock_guard<std::mutex> lock(child_mutex_);
    last_child_ = child;
  }

  JitCompilerOptions options_;
  mutable std::mutex child_mutex_;
  ChildStats last_child_;
};

}  // namespace fts

#endif  // FTS_JIT_COMPILER_DRIVER_H_
