#ifndef FTS_JIT_CODE_GENERATOR_H_
#define FTS_JIT_CODE_GENERATOR_H_

#include <string>

#include "fts/common/status.h"
#include "fts/jit/scan_signature.h"

namespace fts {

// Symbol exported by every generated translation unit.
inline constexpr char kJitScanSymbol[] = "fts_jit_fused_scan";

// Signature of the generated function:
//   columns:   one data pointer per stage
//   values:    packed search values, one 8-byte slot per stage
//   row_count: rows in the chunk
//   out:       match positions (capacity row_count + 16)
// returns the number of matches.
using JitScanFn = size_t (*)(const void* const* columns, const void* values,
                             size_t row_count, uint32_t* out);

inline constexpr size_t kJitValueSlotBytes = 8;

// Emits a standalone C++ translation unit implementing the fused scan for
// `signature` (Section V: the operator "follows a very static pattern and
// can easily be expressed as a code template", so the paper — and this
// reproduction — generate C++ rather than specialize LLVM IR). Every
// type/comparator/width decision is resolved at generation time; only
// column pointers and search values remain runtime parameters.
//
// Fails for empty signatures, chains beyond kMaxScanStages, or an invalid
// register width.
StatusOr<std::string> GenerateFusedScanSource(
    const JitScanSignature& signature);

// Emits the equivalent *data-centric SISD* operator (tight tuple-at-a-time
// loop with short-circuit &&) for the same signature. Used by tests and
// the JIT ablation bench to compare generated-SIMD vs generated-scalar.
StatusOr<std::string> GenerateSisdScanSource(
    const JitScanSignature& signature);

}  // namespace fts

#endif  // FTS_JIT_CODE_GENERATOR_H_
