#ifndef FTS_JIT_CODE_GENERATOR_H_
#define FTS_JIT_CODE_GENERATOR_H_

#include <string>

#include "fts/common/status.h"
#include "fts/jit/scan_signature.h"

namespace fts {

// Symbol exported by every generated translation unit.
inline constexpr char kJitScanSymbol[] = "fts_jit_fused_scan";

// Signature of the generated function:
//   columns:   one data pointer per stage
//   values:    packed search values, one 8-byte slot per stage
//   row_count: rows in the chunk
//   out:       match positions (capacity row_count + 16)
// returns the number of matches.
using JitScanFn = size_t (*)(const void* const* columns, const void* values,
                             size_t row_count, uint32_t* out);

inline constexpr size_t kJitValueSlotBytes = 8;

// Operand of one RLE stage in a generated all-RLE compressed-domain
// operator: the engine passes `&view` in the stage's `columns` slot
// instead of a row-indexed data pointer. The generated translation unit
// declares a structurally identical mirror, so the layout is ABI.
struct JitRleView {
  const void* run_values = nullptr;   // run_count typed run values.
  const uint32_t* run_ends = nullptr; // Cumulative ends; back() == rows.
  uint64_t run_count = 0;
};

// Runtime arguments of one gather term in a generated batch-gather
// operator: the engine passes `&view` in the term's `columns` slot. The
// generated translation unit declares a structurally identical mirror,
// so the layout is ABI (same idiom as JitRleView).
struct JitGatherView {
  const void* data = nullptr;   // Element array / u32 codes / packed bytes.
  const void* dict = nullptr;   // Decode table, or null.
  void* out = nullptr;          // Dense typed destination slice.
  uint64_t base_bits = 0;       // Frame-of-reference base (raw bits).
};

// Emits the gather-only operator for a signature with non-empty
// `gathers`: one generated pass over the survivor position list that
// materializes every projected column — plain copy, (packed) dictionary
// translate and frame-of-reference rebase all burned in per column, with
// no per-row encoding dispatch left at runtime. Calling convention
// (reinterpreting the JitScanFn parameters):
//   columns:   one JitGatherView pointer per gather term
//   values:    the ascending u32 position list
//   row_count: number of positions
//   out:       unused
// returns row_count.
//
// Fails for signatures that also carry stages/aggs/count_only, term
// counts outside 1..kMaxGatherTerms, packed widths beyond 26 bits, or a
// float frame-of-reference term.
StatusOr<std::string> GenerateGatherSource(const JitScanSignature& signature);

// Emits a standalone C++ translation unit implementing the fused scan for
// `signature` (Section V: the operator "follows a very static pattern and
// can easily be expressed as a code template", so the paper — and this
// reproduction — generate C++ rather than specialize LLVM IR). Every
// type/comparator/width decision is resolved at generation time; only
// column pointers and search values remain runtime parameters.
//
// Fails for empty signatures, chains beyond kMaxScanStages, or an invalid
// register width.
//
// Signatures whose stages are all RLE-encoded (SignatureForRleChain)
// instead generate the compressed-domain run-coiteration operator: each
// `columns` slot is a JitRleView, every run value is classified once, and
// qualifying row segments are emitted (or counted) without per-row
// compares. Mixed RLE/kernel chains and RLE aggregate operators are
// rejected — the ladder demotes those to the interpreted path.
StatusOr<std::string> GenerateFusedScanSource(
    const JitScanSignature& signature);

// Emits the equivalent *data-centric SISD* operator (tight tuple-at-a-time
// loop with short-circuit &&) for the same signature. Used by tests and
// the JIT ablation bench to compare generated-SIMD vs generated-scalar.
StatusOr<std::string> GenerateSisdScanSource(
    const JitScanSignature& signature);

}  // namespace fts

#endif  // FTS_JIT_CODE_GENERATOR_H_
