// JIT explorer: shows the Section V pipeline in isolation — what source
// the code generator emits for a chain signature, what compiling it costs,
// and how the signature cache amortizes that cost.
//
// Usage: jit_explorer [signature]
//   signature: comma-separated stages "type:op", e.g. "i32:=,i32:=" or
//   "i32:<,f64:>=,u32:=". Types: i32 u32 f32 i64 u64 f64.
//   Ops: = != < <= > >=.

#include <cstdio>
#include <cstring>
#include <string>

#include "fts/common/string_util.h"
#include "fts/common/timer.h"
#include "fts/jit/jit_cache.h"
#include "fts/jit/jit_scan_engine.h"
#include "fts/storage/data_generator.h"

namespace {

using fts::CompareOp;
using fts::ScanElementType;

bool ParseStage(const std::string& text, fts::JitStageSignature* out) {
  const auto parts = fts::Split(text, ':');
  if (parts.size() != 2) return false;
  if (parts[0] == "i32") out->type = ScanElementType::kI32;
  else if (parts[0] == "u32") out->type = ScanElementType::kU32;
  else if (parts[0] == "f32") out->type = ScanElementType::kF32;
  else if (parts[0] == "i64") out->type = ScanElementType::kI64;
  else if (parts[0] == "u64") out->type = ScanElementType::kU64;
  else if (parts[0] == "f64") out->type = ScanElementType::kF64;
  else return false;
  if (parts[1] == "=") out->op = CompareOp::kEq;
  else if (parts[1] == "!=") out->op = CompareOp::kNe;
  else if (parts[1] == "<") out->op = CompareOp::kLt;
  else if (parts[1] == "<=") out->op = CompareOp::kLe;
  else if (parts[1] == ">") out->op = CompareOp::kGt;
  else if (parts[1] == ">=") out->op = CompareOp::kGe;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string spec = (argc > 1) ? argv[1] : "i32:=,i32:=";

  fts::JitScanSignature signature;
  signature.register_bits = 512;
  for (const std::string& part : fts::Split(spec, ',')) {
    fts::JitStageSignature stage;
    if (!ParseStage(part, &stage)) {
      std::fprintf(stderr, "cannot parse stage '%s'\n", part.c_str());
      return 1;
    }
    signature.stages.push_back(stage);
  }

  std::printf("Signature: %s\n\n", signature.CacheKey().c_str());

  auto source = fts::GenerateFusedScanSource(signature);
  if (!source.ok()) {
    std::fprintf(stderr, "codegen failed: %s\n",
                 source.status().ToString().c_str());
    return 1;
  }
  std::printf("---- generated operator source ----\n%s\n", source->c_str());

  fts::JitCache cache;
  fts::Stopwatch cold;
  auto first = cache.GetOrCompile(signature);
  if (!first.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 first.status().ToString().c_str());
    return 1;
  }
  std::printf("---- compilation ----\n");
  std::printf("cold compile + dlopen: %8.1f ms\n", cold.ElapsedMillis());

  fts::Stopwatch warm;
  auto second = cache.GetOrCompile(signature);
  FTS_CHECK(second.ok());
  std::printf("cache hit:             %8.3f ms\n", warm.ElapsedMillis());
  const auto stats = cache.stats();
  std::printf("cache stats: %llu hits, %llu misses, %.1f ms total compile\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              stats.total_compile_millis);

  // Time the compiled operator against a generated table when the
  // signature is the classic 2-predicate int32 equality chain.
  if (signature.CacheKey() == "512:i32=;i32=") {
    fts::ScanTableOptions options;
    options.rows = 4'000'000;
    options.selectivities = {0.01, 0.5};
    const auto generated = fts::MakeScanTable(options);
    fts::JitScanEngine engine(512, &cache);
    fts::ScanSpec scan;
    scan.predicates = {{"c0", CompareOp::kEq, fts::Value(int32_t{5})},
                       {"c1", CompareOp::kEq, fts::Value(int32_t{2})}};
    fts::Stopwatch run;
    auto matches = engine.Execute(generated.table, scan);
    FTS_CHECK(matches.ok());
    std::printf(
        "\nexecuted on 4M rows: %llu matches in %.3f ms "
        "(ground truth %llu)\n",
        static_cast<unsigned long long>(matches->TotalMatches()),
        run.ElapsedMillis(),
        static_cast<unsigned long long>(generated.stage_matches.back()));
  }
  return 0;
}
