// TPC-H Q6-style scan (the paper names Q6 as a motivating multi-predicate
// query): range predicates over lineitem's shipdate, discount, and
// quantity. Demonstrates BETWEEN desugaring, predicate reordering by the
// optimizer, and dictionary-encoded columns feeding the fused scan.
//
//   SELECT COUNT(*) FROM lineitem
//   WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
//     AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24
//
// Dates are stored as int32 days-since-epoch; discounts as int32
// hundredths (both faithful to "fixed-size via encoding", Section II
// assumption 3).
//
// Usage: tpch_q6_like [rows]   (default 2,000,000)

#include <cstdio>
#include <cstdlib>

#include "fts/common/random.h"
#include "fts/common/stats.h"
#include "fts/common/string_util.h"
#include "fts/common/timer.h"
#include "fts/db/database.h"
#include "fts/storage/data_generator.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace {

using fts::AlignedVector;
using fts::Database;
using fts::ScanEngine;

constexpr int32_t kDate19940101 = 8766;   // Days since 1970-01-01.
constexpr int32_t kDate19950101 = 9131;

fts::TablePtr BuildLineitem(size_t rows, uint64_t seed) {
  fts::Xoshiro256 rng(seed);
  // shipdate uniform over 1992-01-01 .. 1998-12-31 (2557 days).
  AlignedVector<int32_t> shipdate =
      fts::GenerateUniformColumn<int32_t>(rows, 8035, 10592, rng);
  // discount 0.00 .. 0.10 in hundredths.
  AlignedVector<int32_t> discount =
      fts::GenerateUniformColumn<int32_t>(rows, 0, 10, rng);
  // quantity 1 .. 50.
  AlignedVector<int32_t> quantity =
      fts::GenerateUniformColumn<int32_t>(rows, 1, 50, rng);
  // extendedprice (projected in real Q6; here it exercises projection).
  AlignedVector<int32_t> price =
      fts::GenerateUniformColumn<int32_t>(rows, 90000, 10500000, rng);

  fts::TableBuilder builder({{"l_shipdate", fts::DataType::kInt32},
                             {"l_discount", fts::DataType::kInt32},
                             {"l_quantity", fts::DataType::kInt32},
                             {"l_extendedprice", fts::DataType::kInt32}});
  std::vector<fts::ColumnPtr> columns = {
      std::make_shared<fts::ValueColumn<int32_t>>(std::move(shipdate)),
      std::make_shared<fts::ValueColumn<int32_t>>(std::move(discount)),
      std::make_shared<fts::ValueColumn<int32_t>>(std::move(quantity)),
      std::make_shared<fts::ValueColumn<int32_t>>(std::move(price))};
  FTS_CHECK(builder.AddChunk(std::move(columns)).ok());
  return builder.Build();
}

}  // namespace

int main(int argc, char** argv) {
  const size_t rows = (argc > 1) ? static_cast<size_t>(std::atoll(argv[1]))
                                 : 2'000'000;
  std::printf("Building lineitem with %zu rows ...\n", rows);

  Database db;
  FTS_CHECK(db.RegisterTable("lineitem", BuildLineitem(rows, 7)).ok());

  const std::string sql = fts::StrFormat(
      "SELECT COUNT(*) FROM lineitem "
      "WHERE l_shipdate >= %d AND l_shipdate < %d "
      "AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24",
      kDate19940101, kDate19950101);

  std::printf("\nQuery (Q6 analogue): %s\n\n", sql.c_str());
  std::printf("%s\n", db.Explain(sql).value().c_str());

  for (const ScanEngine engine :
       {ScanEngine::kSisdNoVec, ScanEngine::kSisdAutoVec,
        ScanEngine::kAvx2Fused128, ScanEngine::kAvx512Fused512,
        ScanEngine::kJit}) {
    if (!fts::ScanEngineAvailable(engine)) continue;
    Database::QueryOptions options;
    options.engine = engine;
    auto warmup = db.Query(sql, options);
    if (!warmup.ok()) {
      std::printf("%-26s error: %s\n", fts::ScanEngineToString(engine),
                  warmup.status().ToString().c_str());
      continue;
    }
    std::vector<double> millis;
    for (int rep = 0; rep < 7; ++rep) {
      fts::Stopwatch stopwatch;
      auto result = db.Query(sql, options);
      millis.push_back(stopwatch.ElapsedMillis());
      FTS_CHECK(result.ok());
      FTS_CHECK(result->count == warmup->count);
    }
    std::printf("%-26s COUNT(*) = %-9llu median %8.3f ms\n",
                fts::ScanEngineToString(engine),
                static_cast<unsigned long long>(*warmup->count),
                fts::Median(millis));
  }

  // Real Q6 computes SUM(l_extendedprice * l_discount); this engine
  // aggregates a stored column, so the example reports the revenue base.
  const std::string sum_sql = fts::StrFormat(
      "SELECT SUM(l_extendedprice), AVG(l_discount), COUNT(*) "
      "FROM lineitem WHERE l_shipdate >= %d AND l_shipdate < %d "
      "AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24",
      kDate19940101, kDate19950101);
  auto sum_result = db.Query(sum_sql);
  if (sum_result.ok()) {
    std::printf("\nAggregate query:\n  %s\n%s", sum_sql.c_str(),
                sum_result->ToString().c_str());
  }
  return 0;
}
