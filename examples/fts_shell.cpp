// Interactive SQL shell over the fused-scan engine. Demonstrates the full
// Fig. 9 pipeline on ad-hoc data: generate tables, load CSVs, switch scan
// engines, inspect plans.
//
// Usage: fts_shell [script-file]  (reads stdin when no file is given)
//
// Commands:
//   SELECT ...;                 run a query with the current engine
//   \gen NAME ROWS SEL[,SEL..]  generate a scan table (c0..cN columns)
//   \load NAME FILE             load a CSV (typed header "name:type,...")
//   \tables                     list registered tables
//   \engine NAME                set engine (sisd-novec, avx512-512, jit, ...)
//   \threads N                  scan worker threads (0 = FTS_THREADS)
//   \stats NAME                 per-chunk zone maps (min/max/rows) of NAME
//   \encoding NAME [COL ENC]    show or change per-column encodings
//   \explain SQL                show logical + physical plans
//   (EXPLAIN ANALYZE SELECT ... runs the query and prints the plan with
//   actual rows, per-stage times, per-morsel engines and counters.)
//   \timeout MS                 per-query deadline (0 clears)
//   \cancel [MS]                cancel the next query MS ms after start;
//                               Ctrl-C cancels the in-flight query
//   \timing on|off              toggle per-query wall-clock reporting
//   \metrics                    dump the process metrics registry
//   \queries [N]                last N entries of the always-on query log
//   \trace on FILE | \trace off record spans, write Chrome trace JSON
//   \help                       this text
//   \quit

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>

#include "fts/common/query_context.h"
#include "fts/common/string_util.h"
#include "fts/common/timer.h"
#include "fts/db/database.h"
#include "fts/exec/timer_wheel.h"
#include "fts/obs/metrics.h"
#include "fts/obs/query_log.h"
#include "fts/obs/trace.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/csv_loader.h"
#include "fts/storage/data_generator.h"
#include "fts/storage/delta_column.h"
#include "fts/storage/dictionary_column.h"
#include "fts/storage/for_column.h"
#include "fts/storage/rle_column.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace {

using fts::Database;

constexpr char kHelp[] =
    "  SELECT ...;                 run a query with the current engine\n"
    "  \\gen NAME ROWS SEL[,SEL..] generate a scan table\n"
    "  \\load NAME FILE            load a CSV with typed header\n"
    "  \\tables                    list registered tables\n"
    "  \\engine NAME               set scan engine\n"
    "  \\threads N                 scan worker threads (0 = FTS_THREADS)\n"
    "  \\stats NAME                per-chunk zone maps of table NAME\n"
    "  \\encoding NAME             per-column encoding mix of table NAME\n"
    "  \\encoding NAME COL ENC     re-encode column COL as ENC (plain,\n"
    "                             dict, bitpacked, rle, for, delta);\n"
    "                             chunks that cannot carry ENC stay plain\n"
    "  \\explain SQL               show the plans for SQL\n"
    "  EXPLAIN ANALYZE SELECT ... run a query, print the annotated plan\n"
    "  \\timeout MS                deadline for every query (0 clears)\n"
    "  \\cancel [MS]               cancel the next query MS ms after it\n"
    "                             starts (default 0); Ctrl-C cancels the\n"
    "                             in-flight query\n"
    "  \\timing on|off             toggle timing output\n"
    "  \\metrics                   dump the process metrics registry\n"
    "  \\queries [N]               last N logged queries (default 10)\n"
    "  \\trace on FILE             start recording trace spans\n"
    "  \\trace off                 stop, write Chrome trace JSON to FILE\n"
    "  \\help                      show this help\n"
    "  \\quit                      exit\n";

// The in-flight query's context, for the SIGINT handler. Cancel() is a
// couple of lock-free atomic stores, so calling it from the handler is
// async-signal-safe; the query notices at its next morsel/chunk boundary.
std::atomic<fts::QueryContext*> g_active_query{nullptr};

void HandleSigint(int) {
  fts::QueryContext* ctx = g_active_query.load(std::memory_order_acquire);
  if (ctx != nullptr) ctx->Cancel(fts::StatusCode::kQueryCanceled);
}

struct ShellState {
  Database db;
  Database::QueryOptions options;
  bool timing = true;
  // One-shot \cancel delay for the next query; -1 = not armed.
  int64_t cancel_after_millis = -1;
  // Active span recorder (\trace on). Spans accumulate here until
  // \trace off writes them out as Chrome trace JSON.
  std::unique_ptr<fts::obs::TraceSink> trace_sink;
  std::string trace_path;
};

fts::StatusOr<fts::ColumnEncoding> ParseEncoding(const std::string& name) {
  for (int e = 0; e <= 5; ++e) {
    const auto encoding = static_cast<fts::ColumnEncoding>(e);
    if (name == fts::ColumnEncodingName(encoding)) return encoding;
  }
  return fts::Status::InvalidArgument(fts::StrFormat(
      "unknown encoding '%s' (plain, dict, bitpacked, rle, for, delta)",
      name.c_str()));
}

// Builds one chunk's column from `values` under `encoding`, mirroring
// TableBuilder's per-chunk best-effort semantics: a chunk whose data
// cannot carry the encoding stays plain and bumps `fallbacks`.
template <typename T>
fts::ColumnPtr EncodeValues(fts::AlignedVector<T> values,
                            fts::ColumnEncoding encoding,
                            size_t* fallbacks) {
  switch (encoding) {
    case fts::ColumnEncoding::kDictionary:
      return std::make_shared<fts::DictionaryColumn<T>>(
          fts::DictionaryColumn<T>::FromValues(values));
    case fts::ColumnEncoding::kBitPacked: {
      std::vector<T> distinct(values.begin(), values.end());
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      if (fts::BitPackedColumn<T>::BitWidthFor(distinct.size()) <=
          fts::kMaxPackedBits) {
        return std::make_shared<fts::BitPackedColumn<T>>(
            fts::BitPackedColumn<T>::FromValues(values));
      }
      break;
    }
    case fts::ColumnEncoding::kRle:
      return std::make_shared<fts::RleColumn<T>>(
          fts::RleColumn<T>::FromValues(values));
    case fts::ColumnEncoding::kFor:
      if constexpr (std::is_integral_v<T>) {
        if (auto encoded = fts::ForColumn<T>::TryFromValues(values)) {
          return std::make_shared<fts::ForColumn<T>>(std::move(*encoded));
        }
      }
      break;
    case fts::ColumnEncoding::kDelta:
      if constexpr (std::is_integral_v<T>) {
        if (auto encoded = fts::DeltaColumn<T>::TryFromValues(values)) {
          return std::make_shared<fts::DeltaColumn<T>>(std::move(*encoded));
        }
      }
      break;
    case fts::ColumnEncoding::kPlain:
      break;
  }
  if (encoding != fts::ColumnEncoding::kPlain) ++*fallbacks;
  return std::make_shared<fts::ValueColumn<T>>(std::move(values));
}

// Writes out a still-recording trace on exit so \quit or EOF never drops
// recorded spans.
void FlushTrace(ShellState& state) {
  if (state.trace_sink == nullptr) return;
  fts::obs::DetachTraceSink();
  const auto status = state.trace_sink->WriteChromeTrace(state.trace_path);
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
  } else {
    std::printf("wrote %zu spans to %s\n", state.trace_sink->size(),
                state.trace_path.c_str());
  }
  state.trace_sink.reset();
  state.trace_path.clear();
}

void RunCommand(ShellState& state, const std::string& line) {
  std::istringstream in(line);
  std::string command;
  in >> command;

  if (command == "\\help") {
    std::fputs(kHelp, stdout);
    return;
  }
  if (command == "\\tables") {
    for (const std::string& name : state.db.TableNames()) {
      const auto table = state.db.GetTable(name);
      std::printf("  %-20s %llu rows, %zu columns\n", name.c_str(),
                  static_cast<unsigned long long>((*table)->row_count()),
                  (*table)->column_count());
    }
    return;
  }
  if (command == "\\engine") {
    std::string name;
    in >> name;
    const auto engine = fts::ParseScanEngine(name);
    if (!engine.ok()) {
      std::printf("error: %s\n", engine.status().ToString().c_str());
      return;
    }
    if (!fts::ScanEngineAvailable(*engine)) {
      std::printf("error: %s unavailable on this CPU\n",
                  fts::ScanEngineToString(*engine));
      return;
    }
    state.options.engine = *engine;
    std::printf("engine = %s\n", fts::ScanEngineToString(*engine));
    return;
  }
  if (command == "\\threads") {
    int threads = -1;
    in >> threads;
    if (threads < 0) {
      std::printf("usage: \\threads N (0 = FTS_THREADS/auto, 1 = serial)\n");
      return;
    }
    state.options.threads = threads;
    if (threads == 0) {
      std::printf("threads = auto (FTS_THREADS, else serial)\n");
    } else {
      std::printf("threads = %d\n", threads);
    }
    return;
  }
  if (command == "\\timeout") {
    long long millis = -1;
    in >> millis;
    if (millis < 0) {
      std::printf("usage: \\timeout MS (0 clears the deadline)\n");
      return;
    }
    state.options.deadline_millis = millis;
    if (millis == 0) {
      std::printf("timeout cleared\n");
    } else {
      std::printf("timeout = %lld ms per query\n", millis);
    }
    return;
  }
  if (command == "\\cancel") {
    long long millis = 0;
    in >> millis;  // Optional; absent leaves 0 (cancel at first boundary).
    if (millis < 0) {
      std::printf("usage: \\cancel [MS]\n");
      return;
    }
    state.cancel_after_millis = millis;
    std::printf("next query will be canceled %lld ms after it starts\n",
                millis);
    return;
  }
  if (command == "\\timing") {
    std::string flag;
    in >> flag;
    state.timing = (flag != "off");
    std::printf("timing %s\n", state.timing ? "on" : "off");
    return;
  }
  if (command == "\\gen") {
    std::string name;
    size_t rows = 0;
    std::string sels_text;
    in >> name >> rows >> sels_text;
    if (name.empty() || rows == 0 || sels_text.empty()) {
      std::printf("usage: \\gen NAME ROWS SEL[,SEL...]\n");
      return;
    }
    fts::ScanTableOptions options;
    options.rows = rows;
    // Chunk at the row-wise default so big tables are multi-chunk and
    // \threads N has morsels to schedule.
    options.chunk_size = fts::kDefaultChunkSize;
    for (const std::string& field : fts::Split(sels_text, ',')) {
      options.selectivities.push_back(std::atof(field.c_str()));
    }
    const auto generated = fts::MakeScanTable(options);
    const auto status = state.db.RegisterTable(name, generated.table);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return;
    }
    std::printf("created %s (%zu rows, %zu columns; search values:",
                name.c_str(), rows, options.selectivities.size());
    for (const int32_t v : generated.search_values) std::printf(" %d", v);
    std::printf(")\n");
    return;
  }
  if (command == "\\load") {
    std::string name, path;
    in >> name >> path;
    if (name.empty() || path.empty()) {
      std::printf("usage: \\load NAME FILE\n");
      return;
    }
    const auto table = fts::LoadCsvFile(path, fts::CsvOptions{});
    if (!table.ok()) {
      std::printf("error: %s\n", table.status().ToString().c_str());
      return;
    }
    const auto status = state.db.RegisterTable(name, *table);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return;
    }
    std::printf("loaded %s (%llu rows)\n", name.c_str(),
                static_cast<unsigned long long>((*table)->row_count()));
    return;
  }
  if (command == "\\stats") {
    std::string name;
    in >> name;
    if (name.empty()) {
      std::printf("usage: \\stats NAME\n");
      return;
    }
    const auto table = state.db.GetTable(name);
    if (!table.ok()) {
      std::printf("error: %s\n", table.status().ToString().c_str());
      return;
    }
    // Cap the dump so \stats on a thousand-chunk table stays readable.
    constexpr size_t kMaxChunks = 16;
    const size_t chunk_count = (*table)->chunk_count();
    const size_t shown = std::min(chunk_count, kMaxChunks);
    std::printf("%s: %llu rows, %zu columns, %zu chunks\n", name.c_str(),
                static_cast<unsigned long long>((*table)->row_count()),
                (*table)->column_count(), chunk_count);
    for (fts::ChunkId chunk_id = 0; chunk_id < shown; ++chunk_id) {
      const fts::Chunk& chunk = (*table)->chunk(chunk_id);
      std::printf("  chunk %-4u %8zu rows", chunk_id, chunk.row_count());
      for (size_t c = 0; c < chunk.column_count(); ++c) {
        const fts::ZoneMap* zone = chunk.zone_map(c);
        const std::string& column =
            (*table)->column_definition(c).name;
        if (zone == nullptr) {
          std::printf("  %s=[no zone map]", column.c_str());
          continue;
        }
        std::printf("  %s=[%s, %s]", column.c_str(),
                    fts::ValueToString(zone->min).c_str(),
                    fts::ValueToString(zone->max).c_str());
        if (zone->has_codes) {
          std::printf(" codes [%u, %u]", zone->min_code, zone->max_code);
        }
      }
      std::printf("\n");
    }
    if (shown < chunk_count) {
      std::printf("  ... %zu more chunks\n", chunk_count - shown);
    }
    return;
  }
  if (command == "\\encoding") {
    std::string name, column_name, encoding_name;
    in >> name >> column_name >> encoding_name;
    if (name.empty() || (!column_name.empty() && encoding_name.empty())) {
      std::printf("usage: \\encoding NAME [COL ENC]\n");
      return;
    }
    const auto table = state.db.GetTable(name);
    if (!table.ok()) {
      std::printf("error: %s\n", table.status().ToString().c_str());
      return;
    }
    if (column_name.empty()) {
      // Per-column encoding mix across chunks, in ColumnEncoding order.
      for (size_t c = 0; c < (*table)->column_count(); ++c) {
        size_t counts[6] = {};
        for (fts::ChunkId id = 0; id < (*table)->chunk_count(); ++id) {
          ++counts[static_cast<size_t>(
              (*table)->chunk(id).column(c).encoding())];
        }
        std::printf("  %-16s",
                    (*table)->column_definition(c).name.c_str());
        bool first = true;
        for (size_t e = 0; e < 6; ++e) {
          if (counts[e] == 0) continue;
          std::printf("%s%s x%zu", first ? " " : ", ",
                      fts::ColumnEncodingName(
                          static_cast<fts::ColumnEncoding>(e)),
                      counts[e]);
          first = false;
        }
        std::printf("\n");
      }
      return;
    }
    const auto encoding = ParseEncoding(encoding_name);
    if (!encoding.ok()) {
      std::printf("error: %s\n", encoding.status().ToString().c_str());
      return;
    }
    const auto column_index = (*table)->ColumnIndex(column_name);
    if (!column_index.ok()) {
      std::printf("error: %s\n", column_index.status().ToString().c_str());
      return;
    }
    // Rebuild the table chunk by chunk: untouched columns are shared with
    // the old table (zero copy), the target column is decoded through
    // GetValue and re-encoded, and chunk boundaries are preserved.
    std::vector<fts::ColumnDefinition> schema;
    schema.reserve((*table)->column_count());
    for (size_t c = 0; c < (*table)->column_count(); ++c) {
      schema.push_back((*table)->column_definition(c));
    }
    const fts::DataType type = schema[*column_index].type;
    size_t fallbacks = 0;
    fts::TableBuilder builder(std::move(schema));
    for (fts::ChunkId id = 0; id < (*table)->chunk_count(); ++id) {
      const fts::Chunk& chunk = (*table)->chunk(id);
      std::vector<fts::ColumnPtr> columns;
      columns.reserve(chunk.column_count());
      for (size_t c = 0; c < chunk.column_count(); ++c) {
        if (c != *column_index) {
          columns.push_back(chunk.column_ptr(c));
          continue;
        }
        fts::DispatchDataType(type, [&](auto tag) {
          using T = decltype(tag);
          const fts::BaseColumn& source = chunk.column(c);
          fts::AlignedVector<T> values;
          values.reserve(source.size());
          for (size_t row = 0; row < source.size(); ++row) {
            values.push_back(fts::ValueAs<T>(source.GetValue(row)));
          }
          columns.push_back(
              EncodeValues<T>(std::move(values), *encoding, &fallbacks));
        });
      }
      const auto status = builder.AddChunk(std::move(columns));
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
        return;
      }
    }
    (void)state.db.DropTable(name);
    const auto status = state.db.RegisterTable(name, builder.Build());
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return;
    }
    std::printf("%s.%s -> %s", name.c_str(), column_name.c_str(),
                fts::ColumnEncodingName(*encoding));
    if (fallbacks > 0) {
      std::printf(" (%zu chunks fell back to plain)", fallbacks);
    }
    std::printf("\n");
    return;
  }
  if (command == "\\explain") {
    std::string sql;
    std::getline(in, sql);
    const auto text = state.db.Explain(sql, state.options);
    if (!text.ok()) {
      std::printf("error: %s\n", text.status().ToString().c_str());
      return;
    }
    std::fputs(text->c_str(), stdout);
    return;
  }
  if (command == "\\metrics") {
    std::fputs(fts::obs::MetricsRegistry::Global().RenderPrometheus().c_str(),
               stdout);
    return;
  }
  if (command == "\\queries") {
    size_t max_entries = 10;
    if (std::string arg; in >> arg) {
      max_entries = static_cast<size_t>(std::strtoull(arg.c_str(), nullptr, 10));
    }
    const auto entries = fts::obs::QueryLog::Global().Snapshot(max_entries);
    if (entries.empty()) {
      std::printf("query log is empty (%llu recorded)\n",
                  static_cast<unsigned long long>(
                      fts::obs::QueryLog::Global().total_recorded()));
      return;
    }
    std::printf("%-6s %-9s %-12s %10s %10s %8s  %s\n", "id", "status",
                "engine", "ms", "rows", "workers", "digest");
    for (const auto& entry : entries) {
      std::printf("%-6llu %-9s %-12s %10.3f %10llu %8d  %s\n",
                  static_cast<unsigned long long>(entry.id),
                  entry.status.c_str(), entry.engine.c_str(),
                  entry.total_millis,
                  static_cast<unsigned long long>(entry.rows_matched),
                  entry.worker_count, entry.digest.c_str());
    }
    std::printf("(%zu shown of %llu recorded; ring capacity %zu)\n",
                entries.size(),
                static_cast<unsigned long long>(
                    fts::obs::QueryLog::Global().total_recorded()),
                fts::obs::QueryLog::Global().capacity());
    return;
  }
  if (command == "\\trace") {
    std::string flag, path;
    in >> flag >> path;
    if (flag == "on") {
      if (path.empty()) {
        std::printf("usage: \\trace on FILE\n");
        return;
      }
      if (state.trace_sink != nullptr) {
        std::printf("trace already recording to %s (\\trace off first)\n",
                    state.trace_path.c_str());
        return;
      }
      state.trace_sink = std::make_unique<fts::obs::TraceSink>();
      state.trace_path = path;
      fts::obs::AttachTraceSink(state.trace_sink.get());
      std::printf("trace recording; \\trace off writes %s\n", path.c_str());
      return;
    }
    if (flag == "off") {
      if (state.trace_sink == nullptr) {
        std::printf("trace is not recording (\\trace on FILE)\n");
        return;
      }
      fts::obs::DetachTraceSink();
      const auto status =
          state.trace_sink->WriteChromeTrace(state.trace_path);
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
      } else {
        std::printf("wrote %zu spans to %s\n", state.trace_sink->size(),
                    state.trace_path.c_str());
      }
      state.trace_sink.reset();
      state.trace_path.clear();
      return;
    }
    std::printf("usage: \\trace on FILE | \\trace off\n");
    return;
  }
  if (command == "\\quit" || command == "\\q") {
    FlushTrace(state);
    std::exit(0);
  }
  std::printf("unknown command %s (try \\help)\n", command.c_str());
}

void RunSql(ShellState& state, const std::string& sql) {
  // Per-query lifecycle context: \timeout applies through QueryOptions,
  // Ctrl-C cancels via g_active_query, \cancel arms a timer-wheel entry.
  const std::shared_ptr<fts::QueryContext> ctx = fts::QueryContext::Create();
  Database::QueryOptions options = state.options;
  options.context = ctx;
  fts::TimerWheel::TimerId cancel_timer = 0;
  if (state.cancel_after_millis >= 0) {
    std::weak_ptr<fts::QueryContext> weak = ctx;
    cancel_timer = fts::TimerWheel::Global().Schedule(
        state.cancel_after_millis, [weak] {
          if (const auto locked = weak.lock()) {
            locked->Cancel(fts::StatusCode::kQueryCanceled);
          }
        });
    state.cancel_after_millis = -1;
  }
  g_active_query.store(ctx.get(), std::memory_order_release);

  fts::Stopwatch stopwatch;
  const auto result = state.db.Query(sql, options);
  const double millis = stopwatch.ElapsedMillis();

  g_active_query.store(nullptr, std::memory_order_release);
  if (cancel_timer != 0) fts::TimerWheel::Global().Cancel(cancel_timer);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::fputs(result->ToString(25).c_str(), stdout);
  // Plain EXPLAIN plans without executing; a timing line for it would
  // report a default ExecutionReport. EXPLAIN ANALYZE (attempts recorded)
  // keeps the line: it shows total wall time including parse/plan.
  const bool executed = result->explain_text.empty() ||
                        !result->execution_report.attempts.empty();
  if (state.timing && executed) {
    const fts::ExecutionReport& report = result->execution_report;
    // Zone-map pruning annotation: only when something was actually pruned.
    std::string pruned;
    if (report.chunks_total > 0 && report.chunks_pruned > 0) {
      pruned = fts::StrFormat(", pruned %zu/%zu chunks",
                              report.chunks_pruned, report.chunks_total);
    }
    // Split total wall time into JIT compilation and scan execution so a
    // cold JIT query is not mistaken for a slow scan.
    std::string timing = fts::StrFormat("%.3f ms", millis);
    if (report.jit_compile_millis > 0.0) {
      timing += fts::StrFormat(" (jit compile %.3f ms + scan %.3f ms)",
                               report.jit_compile_millis,
                               report.scan_millis);
    } else if (report.scan_millis > 0.0) {
      timing += fts::StrFormat(" (scan %.3f ms)", report.scan_millis);
    }
    if (report.morsel_count > 0) {
      std::printf("(%llu rows matched, %s, %s, %d workers / %zu "
                  "morsels%s)\n",
                  static_cast<unsigned long long>(result->matched_rows),
                  timing.c_str(), report.executed.ToString().c_str(),
                  report.worker_count, report.morsel_count, pruned.c_str());
    } else {
      std::printf("(%llu rows matched, %s, %s%s)\n",
                  static_cast<unsigned long long>(result->matched_rows),
                  timing.c_str(), report.executed.ToString().c_str(),
                  pruned.c_str());
    }
    if (report.degraded) {
      std::printf("note: degraded from %s — %s\n",
                  report.requested.ToString().c_str(),
                  report.attempts.empty()
                      ? "(no attempts recorded)"
                      : report.attempts.front().status.ToString().c_str());
    }
  }
}

int RunShell(std::istream& in, bool interactive) {
  ShellState state;
  fts::obs::SetCurrentThreadLabel("shell main");
  std::signal(SIGINT, HandleSigint);
  std::printf("Fused Table Scan shell. \\help for commands; default engine "
              "%s.\n",
              fts::ScanEngineToString(Database::DefaultEngine()));
  std::string line;
  while (true) {
    if (interactive) {
      std::printf("fts> ");
      std::fflush(stdout);
    }
    if (!std::getline(in, line)) break;
    const std::string_view trimmed = fts::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (!interactive) std::printf("fts> %s\n", std::string(trimmed).c_str());
    if (trimmed[0] == '\\') {
      RunCommand(state, std::string(trimmed));
    } else {
      RunSql(state, std::string(trimmed));
    }
  }
  FlushTrace(state);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open script '%s'\n", argv[1]);
      return 1;
    }
    return RunShell(file, /*interactive=*/false);
  }
  return RunShell(std::cin, /*interactive=*/true);
}
