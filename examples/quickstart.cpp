// Quickstart: build a table, run multi-predicate scans through every
// engine — from the naive SISD loop to the JIT-compiled AVX-512 Fused
// Table Scan — and show that they agree while the fused engines win.
//
// Usage: quickstart [rows]   (default 4,000,000)

#include <cstdio>
#include <cstdlib>

#include "fts/common/cpu_info.h"
#include "fts/common/stats.h"
#include "fts/common/timer.h"
#include "fts/db/database.h"
#include "fts/storage/data_generator.h"

namespace {

using fts::Database;
using fts::ScanEngine;

void RunWithEngine(const Database& db, const std::string& sql,
                   ScanEngine engine) {
  if (!fts::ScanEngineAvailable(engine)) {
    std::printf("  %-26s  (not available on this CPU)\n",
                fts::ScanEngineToString(engine));
    return;
  }
  Database::QueryOptions options;
  options.engine = engine;

  // Warm-up run (also compiles the operator for the JIT engine).
  auto warmup = db.Query(sql, options);
  if (!warmup.ok()) {
    std::printf("  %-26s  error: %s\n", fts::ScanEngineToString(engine),
                warmup.status().ToString().c_str());
    return;
  }

  std::vector<double> millis;
  for (int rep = 0; rep < 5; ++rep) {
    fts::Stopwatch stopwatch;
    auto result = db.Query(sql, options);
    millis.push_back(stopwatch.ElapsedMillis());
    if (!result.ok()) return;
  }
  std::printf("  %-26s  COUNT(*) = %-10llu  median %8.3f ms\n",
              fts::ScanEngineToString(engine),
              static_cast<unsigned long long>(warmup->count.value_or(0)),
              fts::Median(millis));
}

}  // namespace

int main(int argc, char** argv) {
  const size_t rows = (argc > 1) ? static_cast<size_t>(std::atoll(argv[1]))
                                 : 4'000'000;

  std::printf("CPU features: %s\n\n", fts::GetCpuFeatures().ToString().c_str());

  // The paper's running example: two equality predicates; the first
  // matches 1%% of rows, the second 50%% of the remainder.
  fts::ScanTableOptions table_options;
  table_options.rows = rows;
  table_options.selectivities = {0.01, 0.5};
  table_options.seed = 42;
  std::printf("Generating %zu rows ...\n", rows);
  const fts::GeneratedScanTable generated = fts::MakeScanTable(table_options);

  Database db;
  FTS_CHECK(db.RegisterTable("tbl", generated.table).ok());

  const std::string sql = "SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2";
  std::printf("\nQuery: %s\n", sql.c_str());
  std::printf("Expected matches (from generator ground truth): %llu\n\n",
              static_cast<unsigned long long>(generated.stage_matches.back()));

  std::printf("Plan with the Fused Table Scan:\n%s\n",
              db.Explain(sql).value().c_str());

  for (const ScanEngine engine :
       {ScanEngine::kSisdNoVec, ScanEngine::kSisdAutoVec,
        ScanEngine::kBlockwise, ScanEngine::kScalarFused,
        ScanEngine::kAvx2Fused128, ScanEngine::kAvx512Fused128,
        ScanEngine::kAvx512Fused256, ScanEngine::kAvx512Fused512,
        ScanEngine::kJit}) {
    RunWithEngine(db, sql, engine);
  }

  std::printf("\nProjection query:\n");
  auto rows_result =
      db.Query("SELECT c0, c1 FROM tbl WHERE c0 = 5 AND c1 = 2");
  if (rows_result.ok()) {
    std::printf("%s", rows_result->ToString(5).c_str());
  }
  return 0;
}
