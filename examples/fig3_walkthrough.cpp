// A literal walkthrough of the paper's Figure 3 with its exact data:
// 16 uint32 values per column, 128-bit registers, searching a = 5 then
// b = 2. Prints every register and mask after each AVX-512 instruction so
// the output can be compared line by line with the figure.
//
// Column A: 2 5 4 5 | 6 1 5 7 | 6 8 5 3 | 5 9 9 5
// Column B: 5 2 3 1 | 1 3 6 0 | 8 7 3 3 | 2 9 3 2
//
// Compiled with AVX-512 flags (see examples/CMakeLists.txt); refuses to
// run on CPUs without AVX-512 F/VL.

#include <immintrin.h>

#include <cstdio>

#include "fts/common/cpu_info.h"

namespace {

void PrintVec(const char* label, __m128i v) {
  alignas(16) uint32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), v);
  std::printf("  %-34s [%2u %2u %2u %2u]\n", label, lanes[0], lanes[1],
              lanes[2], lanes[3]);
}

void PrintMask(const char* label, __mmask8 m) {
  std::printf("  %-34s [%d %d %d %d]\n", label, (m >> 0) & 1, (m >> 1) & 1,
              (m >> 2) & 1, (m >> 3) & 1);
}

}  // namespace

int main() {
  if (!fts::GetCpuFeatures().HasFusedScanAvx512()) {
    std::printf("This walkthrough needs AVX-512 F/BW/DQ/VL.\n");
    return 0;
  }

  alignas(64) const uint32_t column_a[16] = {2, 5, 4, 5, 6, 1, 5, 7,
                                             6, 8, 5, 3, 5, 9, 9, 5};
  alignas(64) const uint32_t column_b[16] = {5, 2, 3, 1, 1, 3, 6, 0,
                                             8, 7, 3, 3, 2, 9, 3, 2};
  const __m128i search_a = _mm_set1_epi32(5);
  const __m128i search_b = _mm_set1_epi32(2);

  std::printf("Figure 3 walkthrough: SELECT COUNT(*) WHERE a = 5 AND b = 2"
              "\n\n");

  // Position-list accumulator for stage 2 (the paper keeps it in an AVX
  // register; `count` tracks the number of valid entries).
  __m128i position_list = _mm_setzero_si128();
  int count = 0;
  __m128i indices = _mm_setr_epi32(0, 1, 2, 3);
  const __m128i step = _mm_set1_epi32(4);

  size_t final_matches = 0;

  auto process_positions = [&](__m128i positions, int n) {
    std::printf("-- position list full (or input drained): evaluate b = 2\n");
    PrintVec("matching positions in column a", positions);
    const auto valid = static_cast<__mmask8>((1u << n) - 1);
    const __m128i gathered = _mm_mmask_i32gather_epi32(
        _mm_setzero_si128(), valid, positions, column_b, 4);
    PrintVec("_mm_i32gather_epi32(b, positions)", gathered);
    const __mmask8 mb =
        _mm_mask_cmpeq_epi32_mask(valid, gathered, search_b);
    PrintMask("_mm_mask_cmpeq_epi32_mask", mb);
    const __m128i survivors = _mm_maskz_compress_epi32(mb, positions);
    PrintVec("_mm_mask_compress_epi32", survivors);
    const int matches = __builtin_popcount(mb);
    final_matches += static_cast<size_t>(matches);
    if (matches > 0) {
      alignas(16) uint32_t rows[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(rows), survivors);
      for (int i = 0; i < matches; ++i) {
        std::printf("  => row %u matches both conditions\n", rows[i]);
      }
    }
    std::printf("\n");
  };

  for (int block = 0; block < 4; ++block) {
    std::printf("== iteration %d: rows %d..%d of column a\n", block + 1,
                block * 4, block * 4 + 3);
    const __m128i data = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(column_a + block * 4));
    PrintVec("_mm_loadu_si128(a)", data);
    const __mmask8 ma = _mm_cmpeq_epi32_mask(data, search_a);
    PrintMask("_mm_cmpeq_epi32_mask(a, 5)", ma);
    const __m128i block_positions = _mm_maskz_compress_epi32(ma, indices);
    PrintVec("_mm_mask_compress_epi32(idx)", block_positions);
    const int n = __builtin_popcount(ma);

    // Append to the running position list (the paper's permutex2var +
    // mask_compress pair; one vpexpandd here).
    if (count + n > 4) {
      process_positions(position_list, count);
      count = 0;
    }
    position_list = _mm_mask_expand_epi32(
        position_list, static_cast<__mmask8>((0xFu << count) & 0xFu),
        block_positions);
    count += n;
    PrintVec("position list (appended)", position_list);
    std::printf("  entries in list: %d\n\n", count);
    if (count == 4) {
      process_positions(position_list, 4);
      count = 0;
    }
    indices = _mm_add_epi32(indices, step);
  }
  if (count > 0) process_positions(position_list, count);

  std::printf(
      "final result: %zu row(s) match both conditions.\n"
      "(Figure 3 walks the first full position list [1 3 6 10] and finds "
      "row 1; draining the\nremaining positions adds the matches in the "
      "final block.)\n",
      final_matches);
  return 0;
}
