// MVCC visibility as follow-up predicates (Section IV: "... when the DBMS
// uses multi-version concurrency control (MVCC) and the validation of the
// visibility vectors is treated as a follow-up predicate").
//
// Each row carries begin/end transaction ids; a snapshot read at
// transaction T sees rows with begin_tid <= T < end_tid. That adds two
// range predicates to every user predicate — exactly the growing-chain
// regime where Fig. 7 shows the fused scan's advantage increasing.
//
// Usage: mvcc_visibility [rows]   (default 2,000,000)

#include <cstdio>
#include <cstdlib>

#include "fts/common/random.h"
#include "fts/common/stats.h"
#include "fts/common/string_util.h"
#include "fts/common/timer.h"
#include "fts/db/database.h"
#include "fts/storage/data_generator.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace {

using fts::AlignedVector;
using fts::Database;
using fts::ScanEngine;

constexpr uint32_t kMaxTid = 1'000'000;
constexpr uint32_t kLiveEndTid = ~0u;  // "Not yet deleted".

fts::TablePtr BuildVersionedTable(size_t rows, uint64_t seed) {
  fts::Xoshiro256 rng(seed);
  AlignedVector<int32_t> status(rows);
  AlignedVector<uint32_t> begin_tid(rows);
  AlignedVector<uint32_t> end_tid(rows);
  for (size_t i = 0; i < rows; ++i) {
    status[i] = static_cast<int32_t>(rng.NextBounded(100));  // 1% per code.
    begin_tid[i] = static_cast<uint32_t>(rng.NextBounded(kMaxTid));
    // ~80% of versions still live; the rest deleted at a later tid.
    end_tid[i] = (rng.NextBounded(10) < 8)
                     ? kLiveEndTid
                     : begin_tid[i] +
                           static_cast<uint32_t>(rng.NextBounded(kMaxTid));
  }
  fts::TableBuilder builder({{"status", fts::DataType::kInt32},
                             {"begin_tid", fts::DataType::kUInt32},
                             {"end_tid", fts::DataType::kUInt32}});
  std::vector<fts::ColumnPtr> columns = {
      std::make_shared<fts::ValueColumn<int32_t>>(std::move(status)),
      std::make_shared<fts::ValueColumn<uint32_t>>(std::move(begin_tid)),
      std::make_shared<fts::ValueColumn<uint32_t>>(std::move(end_tid))};
  FTS_CHECK(builder.AddChunk(std::move(columns)).ok());
  return builder.Build();
}

}  // namespace

int main(int argc, char** argv) {
  const size_t rows = (argc > 1) ? static_cast<size_t>(std::atoll(argv[1]))
                                 : 2'000'000;
  std::printf("Building versioned table with %zu rows ...\n", rows);

  Database db;
  FTS_CHECK(db.RegisterTable("orders", BuildVersionedTable(rows, 99)).ok());

  const uint32_t snapshot_tid = kMaxTid / 2;
  // User predicate + the two visibility predicates appended by the "MVCC
  // layer". The fused scan treats them as just more chain stages.
  const std::string sql = fts::StrFormat(
      "SELECT COUNT(*) FROM orders WHERE status = 7 "
      "AND begin_tid <= %u AND end_tid > %u",
      snapshot_tid, snapshot_tid);

  std::printf("\nSnapshot read at tid %u:\n  %s\n\n", snapshot_tid,
              sql.c_str());
  std::printf("%s\n", db.Explain(sql).value().c_str());

  for (const ScanEngine engine :
       {ScanEngine::kSisdNoVec, ScanEngine::kSisdAutoVec,
        ScanEngine::kAvx512Fused512, ScanEngine::kJit}) {
    if (!fts::ScanEngineAvailable(engine)) continue;
    Database::QueryOptions options;
    options.engine = engine;
    auto warmup = db.Query(sql, options);
    if (!warmup.ok()) {
      std::printf("%-26s error: %s\n", fts::ScanEngineToString(engine),
                  warmup.status().ToString().c_str());
      continue;
    }
    std::vector<double> millis;
    for (int rep = 0; rep < 7; ++rep) {
      fts::Stopwatch stopwatch;
      auto result = db.Query(sql, options);
      millis.push_back(stopwatch.ElapsedMillis());
      FTS_CHECK(result.ok());
    }
    std::printf("%-26s visible rows = %-9llu median %8.3f ms\n",
                fts::ScanEngineToString(engine),
                static_cast<unsigned long long>(*warmup->count),
                fts::Median(millis));
  }
  return 0;
}
