// Unit tests for the late-materialization batch-gather pipeline
// (DESIGN.md §16): every gather kernel (scalar/AVX2/AVX-512) against the
// boxed Table::GetValue oracle, over every encoding and element width,
// with the survivor counts the lane widths mistreat first (0, 1, 15, 17)
// and bit-packed streams whose code windows straddle 64-bit word
// boundaries. Also covers the typed narrow-width loops, the RLE tandem
// run walk, delta block-aware decoding, and ColumnarResult's permutation
// and truncation primitives the ORDER BY/LIMIT paths rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "fts/common/cpu_info.h"
#include "fts/common/string_util.h"
#include "fts/exec/parallel_project.h"
#include "fts/scan/projection_gather.h"
#include "fts/simd/dispatch.h"
#include "fts/simd/gather_kernels.h"
#include "fts/storage/columnar_result.h"
#include "fts/storage/table_builder.h"

namespace fts {
namespace {

// Gather kernels the host CPU can run, deepest first.
std::vector<FusedKernelKind> AvailableKernels() {
  std::vector<FusedKernelKind> kernels = {FusedKernelKind::kScalar};
  if (GetCpuFeatures().avx2) kernels.push_back(FusedKernelKind::kAvx2_128);
  if (GetCpuFeatures().HasFusedScanAvx512()) {
    kernels.push_back(FusedKernelKind::kAvx512_512);
  }
  return kernels;
}

// Survivor counts around the 8/16-lane group widths: empty, single, one
// below a full 16-group, one past it, and odd mid-sizes.
constexpr size_t kTailCounts[] = {0, 1, 7, 8, 15, 16, 17, 33, 100};

// Builds a table with one column per encoding over `type`-typed data and
// checks every kernel's gather of every column against GetValue.
void CheckAllEncodings(DataType type, size_t rows, size_t chunk_size) {
  std::vector<ColumnDefinition> schema;
  constexpr ColumnEncoding kEncodings[] = {
      ColumnEncoding::kPlain,     ColumnEncoding::kDictionary,
      ColumnEncoding::kBitPacked, ColumnEncoding::kRle,
      ColumnEncoding::kFor,       ColumnEncoding::kDelta};
  for (size_t c = 0; c < std::size(kEncodings); ++c) {
    schema.push_back({StrFormat("c%zu", c), type});
  }
  TableBuilder builder(schema, chunk_size);
  for (size_t c = 0; c < std::size(kEncodings); ++c) {
    builder.SetEncoding(c, kEncodings[c]);
  }
  std::vector<Value> row(schema.size(), Value(int32_t{0}));
  for (size_t r = 0; r < rows; ++r) {
    // Clustered values (RLE runs, small dictionaries) with enough spread
    // to exercise multi-bit packed codes; exact in every element type.
    const int64_t v = static_cast<int64_t>((r / 7) % 100) - 50;
    for (size_t c = 0; c < schema.size(); ++c) {
      switch (type) {
        case DataType::kInt32:
          row[c] = Value(static_cast<int32_t>(v));
          break;
        case DataType::kInt64:
          row[c] = Value(v * 1000003);
          break;
        case DataType::kUInt32:
          row[c] = Value(static_cast<uint32_t>(v + 50));
          break;
        case DataType::kUInt64:
          row[c] = Value(static_cast<uint64_t>(v + 50) * 1000003u);
          break;
        case DataType::kFloat32:
          row[c] = Value(static_cast<float>(v) / 2.0f);
          break;
        case DataType::kFloat64:
          row[c] = Value(static_cast<double>(v) / 2.0);
          break;
        case DataType::kInt16:
          row[c] = Value(static_cast<int16_t>(v));
          break;
        case DataType::kUInt8:
          row[c] = Value(static_cast<uint8_t>(v + 50));
          break;
        default:
          row[c] = Value(static_cast<int32_t>(v));
      }
    }
    ASSERT_TRUE(builder.AppendRow(row).ok());
  }
  const TablePtr table = builder.Build();

  std::vector<size_t> indexes(schema.size());
  std::iota(indexes.begin(), indexes.end(), size_t{0});
  const auto gatherer = ProjectionGatherer::Prepare(table, indexes);
  ASSERT_TRUE(gatherer.ok()) << gatherer.status().ToString();
  std::vector<std::string> names;
  for (const ColumnDefinition& def : schema) names.push_back(def.name);

  for (const FusedKernelKind kind : AvailableKernels()) {
    const auto fn = GetGatherKernel(kind);
    ASSERT_TRUE(fn.ok());
    for (const size_t survivors : kTailCounts) {
      for (ChunkId chunk_id = 0; chunk_id < table->chunk_count();
           ++chunk_id) {
        const size_t chunk_rows = table->chunk(chunk_id).row_count();
        if (survivors > chunk_rows) continue;
        // Ascending survivor positions spread over the chunk (the
        // compressed gathers require ascending order, like real
        // position lists).
        std::vector<ChunkOffset> positions(survivors);
        for (size_t i = 0; i < survivors; ++i) {
          positions[i] = static_cast<ChunkOffset>(
              i * chunk_rows / (survivors == 0 ? 1 : survivors));
        }
        positions.erase(std::unique(positions.begin(), positions.end()),
                        positions.end());

        ColumnarResult out;
        gatherer->InitResult(names, &out);
        out.SetRowCount(positions.size());
        GatherStats stats;
        gatherer->GatherChunk(fn.value(), chunk_id, positions.data(),
                              positions.size(), &out, 0, &stats);
        for (size_t i = 0; i < positions.size(); ++i) {
          for (size_t c = 0; c < schema.size(); ++c) {
            EXPECT_EQ(ValueToString(out.ValueAt(i, c)),
                      ValueToString(table->GetValue(
                          c, RowId{chunk_id, positions[i]})))
                << "kind=" << FusedKernelKindToString(kind)
                << " type=" << static_cast<int>(type)
                << " encoding=" << static_cast<int>(kEncodings[c])
                << " chunk=" << chunk_id << " i=" << i
                << " pos=" << positions[i];
          }
        }
      }
    }
  }
}

TEST(ProjectionGatherTest, AllEncodingsInt32) {
  CheckAllEncodings(DataType::kInt32, 1000, 257);
}

TEST(ProjectionGatherTest, AllEncodingsInt64) {
  CheckAllEncodings(DataType::kInt64, 1000, 257);
}

TEST(ProjectionGatherTest, AllEncodingsUInt32) {
  CheckAllEncodings(DataType::kUInt32, 600, 127);
}

TEST(ProjectionGatherTest, AllEncodingsUInt64) {
  CheckAllEncodings(DataType::kUInt64, 600, 127);
}

TEST(ProjectionGatherTest, AllEncodingsFloat32) {
  CheckAllEncodings(DataType::kFloat32, 500, 129);
}

TEST(ProjectionGatherTest, AllEncodingsFloat64) {
  CheckAllEncodings(DataType::kFloat64, 500, 129);
}

// Narrow element widths (1/2-byte) are outside the kernel contract and
// must land on the typed loops with identical values.
TEST(ProjectionGatherTest, NarrowTypesTakeTypedPath) {
  CheckAllEncodings(DataType::kInt16, 400, 101);
  CheckAllEncodings(DataType::kUInt8, 400, 101);
}

// Bit-packed windows that straddle 64-bit word boundaries: a 7-bit code
// stream puts a code across a byte boundary every 8 codes and across an
// 8-byte window alignment seam throughout; gathering *every* position
// covers each straddle case, including the very last code (slack bytes).
TEST(ProjectionGatherTest, BitPackedWordBoundaryWindows) {
  constexpr size_t kRows = 2048;
  TableBuilder builder({{"c0", DataType::kInt32}}, kRows);
  builder.SetBitPacked(0);
  for (size_t r = 0; r < kRows; ++r) {
    // 100 distinct values -> 7-bit codes.
    ASSERT_TRUE(
        builder.AppendRow({Value(static_cast<int32_t>(r % 100))}).ok());
  }
  const TablePtr table = builder.Build();
  const auto gatherer = ProjectionGatherer::Prepare(table, {0});
  ASSERT_TRUE(gatherer.ok());

  std::vector<ChunkOffset> positions(kRows);
  std::iota(positions.begin(), positions.end(), 0u);
  for (const FusedKernelKind kind : AvailableKernels()) {
    const auto fn = GetGatherKernel(kind);
    ASSERT_TRUE(fn.ok());
    ColumnarResult out;
    gatherer->InitResult({"c0"}, &out);
    out.SetRowCount(kRows);
    GatherStats stats;
    gatherer->GatherChunk(fn.value(), 0, positions.data(), kRows, &out, 0,
                          &stats);
    const int32_t* data = out.TypedData<int32_t>(0);
    for (size_t r = 0; r < kRows; ++r) {
      ASSERT_EQ(data[r], static_cast<int32_t>(r % 100))
          << FusedKernelKindToString(kind) << " row " << r;
    }
    EXPECT_EQ(stats.kernel_rows, kRows);
    EXPECT_EQ(stats.rows_by_encoding[static_cast<size_t>(
                  ColumnEncoding::kBitPacked)],
              kRows);
  }
}

// Delta gather decodes only the blocks containing survivors.
TEST(ProjectionGatherTest, DeltaDecodesOnlyTouchedBlocks) {
  constexpr size_t kRows = 5000;  // 5 blocks of 1024 (last partial).
  TableBuilder builder({{"c0", DataType::kInt64}}, kRows);
  builder.SetEncoding(0, ColumnEncoding::kDelta);
  for (size_t r = 0; r < kRows; ++r) {
    ASSERT_TRUE(
        builder.AppendRow({Value(static_cast<int64_t>(r * 3))}).ok());
  }
  const TablePtr table = builder.Build();
  const auto gatherer = ProjectionGatherer::Prepare(table, {0});
  ASSERT_TRUE(gatherer.ok());

  // Survivors only in blocks 0 and 3.
  std::vector<ChunkOffset> positions = {5, 100, 1023, 3072, 3500, 4095};
  ColumnarResult out;
  gatherer->InitResult({"c0"}, &out);
  out.SetRowCount(positions.size());
  GatherStats stats;
  gatherer->GatherChunk(&GatherScalar, 0, positions.data(),
                        positions.size(), &out, 0, &stats);
  for (size_t i = 0; i < positions.size(); ++i) {
    EXPECT_EQ(out.TypedData<int64_t>(0)[i],
              static_cast<int64_t>(positions[i]) * 3);
  }
  EXPECT_EQ(stats.delta_blocks_decoded, 2u);
}

// ColumnarResult primitives used by ORDER BY / LIMIT.
TEST(ColumnarResultTest, PermutationAndTruncation) {
  ColumnarResult result;
  result.AddColumn("a", DataType::kInt32);
  result.AddColumn("b", DataType::kFloat64);
  result.SetRowCount(4);
  int32_t* a = result.MutableTypedData<int32_t>(0);
  double* b = result.MutableTypedData<double>(1);
  for (int i = 0; i < 4; ++i) {
    a[i] = i;
    b[i] = i * 0.5;
  }
  result.ApplyPermutation({3, 1, 2, 0});
  EXPECT_EQ(result.TypedData<int32_t>(0)[0], 3);
  EXPECT_EQ(result.TypedData<int32_t>(0)[3], 0);
  EXPECT_DOUBLE_EQ(result.TypedData<double>(1)[0], 1.5);
  result.TruncateRows(2);
  EXPECT_EQ(result.row_count(), 2u);
  EXPECT_EQ(ValueAs<int32_t>(result.ValueAt(1, 0)), 1);
  EXPECT_DOUBLE_EQ(ValueAs<double>(result.ValueAt(0, 1)), 1.5);
}

// ExecuteParallelGather writes disjoint slices per chunk and assembles in
// chunk order, byte-identically at every thread count.
TEST(ProjectionGatherTest, ParallelAssemblyDeterministic) {
  constexpr size_t kRows = 4096;
  TableBuilder builder(
      {{"c0", DataType::kInt32}, {"c1", DataType::kInt64}}, 300);
  builder.SetDictionaryEncoded(1);
  for (size_t r = 0; r < kRows; ++r) {
    ASSERT_TRUE(builder
                    .AppendRow({Value(static_cast<int32_t>(r)),
                                Value(static_cast<int64_t>(r % 37))})
                    .ok());
  }
  const TablePtr table = builder.Build();
  const auto gatherer = ProjectionGatherer::Prepare(table, {0, 1});
  ASSERT_TRUE(gatherer.ok());

  // Every third row survives.
  TableMatches matches;
  for (ChunkId chunk_id = 0; chunk_id < table->chunk_count(); ++chunk_id) {
    ChunkMatches chunk;
    chunk.chunk_id = chunk_id;
    const size_t chunk_rows = table->chunk(chunk_id).row_count();
    for (size_t r = 0; r < chunk_rows; r += 3) {
      chunk.positions.push_back(static_cast<ChunkOffset>(r));
    }
    matches.chunks.push_back(std::move(chunk));
  }

  ColumnarResult reference;
  GatherStats reference_stats;
  ParallelProjectOptions serial;
  serial.threads = 1;
  ASSERT_TRUE(ExecuteParallelGather(*gatherer, matches, {"c0", "c1"},
                                    serial, &reference, &reference_stats)
                  .ok());
  for (const int threads : {2, 4}) {
    ParallelProjectOptions options;
    options.threads = threads;
    options.kernel = AvailableKernels().back();
    ColumnarResult out;
    GatherStats stats;
    ASSERT_TRUE(ExecuteParallelGather(*gatherer, matches, {"c0", "c1"},
                                      options, &out, &stats)
                    .ok());
    ASSERT_EQ(out.row_count(), reference.row_count());
    for (size_t r = 0; r < out.row_count(); ++r) {
      ASSERT_EQ(out.TypedData<int32_t>(0)[r],
                reference.TypedData<int32_t>(0)[r])
          << "threads=" << threads << " row " << r;
      ASSERT_EQ(out.TypedData<int64_t>(1)[r],
                reference.TypedData<int64_t>(1)[r])
          << "threads=" << threads << " row " << r;
    }
    EXPECT_EQ(stats.kernel_rows + stats.typed_rows,
              reference_stats.kernel_rows + reference_stats.typed_rows);
  }
}

}  // namespace
}  // namespace fts
