// Encode -> decode identity for the compressed encodings (RLE, frame of
// reference, delta), with the adversarial inputs the scan paths must not
// mishandle: empty and single-run chunks, runs crossing awkward chunk
// tails (0/1/15/17 rows past a lane width), INT64_MIN/INT64_MAX
// frame-of-reference rebase overflow, and monotone-decreasing sequences
// whose zigzag diffs are all negative. The compressed-domain kernels
// (fts/scan/compressed_scan.h) never decode; these tests pin down the
// storage layer they reason over, so a differential failure can be split
// into "encoder wrong" vs "range math wrong".

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "fts/common/aligned_buffer.h"
#include "fts/common/random.h"
#include "fts/storage/delta_column.h"
#include "fts/storage/for_column.h"
#include "fts/storage/rle_column.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"
#include "test_util.h"

namespace fts {
namespace {

// Chunk tails the lane widths mistreat: the empty chunk, a single row,
// one row short of / past the 16-lane width, and sizes around the delta
// block boundary.
constexpr size_t kAwkwardRows[] = {0, 1, 15, 17, 31, 64, 100,
                                   1023, 1024, 1025, 3000};

template <typename T, typename Column>
void ExpectRoundTrip(const AlignedVector<T>& source, const Column& column,
                     const char* what) {
  ASSERT_EQ(column.size(), source.size()) << what;
  for (size_t row = 0; row < source.size(); ++row) {
    ASSERT_EQ(column.ValueAt(row), source[row])
        << what << " row " << row << " of " << source.size();
    // The boxed accessor (materialization path) must agree too.
    ASSERT_EQ(ValueAs<T>(column.GetValue(row)), source[row])
        << what << " row " << row;
  }
}

TEST(RleRoundTripTest, RandomRunsEveryAwkwardSize) {
  Xoshiro256 rng(19);
  for (const size_t rows : kAwkwardRows) {
    AlignedVector<int32_t> values(rows);
    int32_t current = 0;
    for (auto& v : values) {
      // Geometric-ish run lengths: extend the run 3 times out of 4.
      if (rng.NextBounded(4) == 0) {
        current = static_cast<int32_t>(rng.NextBounded(7)) - 3;
      }
      v = current;
    }
    const RleColumn<int32_t> column = RleColumn<int32_t>::FromValues(values);
    ExpectRoundTrip(values, column, "rle");
    ASSERT_TRUE(column.run_ends().empty() ||
                column.run_ends().back() == rows);
    // Runs are maximal: consecutive run values always differ.
    for (size_t i = 1; i < column.run_count(); ++i) {
      EXPECT_NE(column.run_values()[i], column.run_values()[i - 1])
          << "rows=" << rows << " run " << i;
    }
  }
}

TEST(RleRoundTripTest, SingleRunAndAlternatingExtremes) {
  // One run covering the whole chunk.
  AlignedVector<int64_t> constant(1000, INT64_MIN);
  const auto single = RleColumn<int64_t>::FromValues(constant);
  EXPECT_EQ(single.run_count(), 1u);
  ExpectRoundTrip(constant, single, "rle single-run");

  // Worst case: no repeats at all — one run per row, alternating the
  // extremes so value comparisons see both signs.
  AlignedVector<int64_t> alternating(17);
  for (size_t i = 0; i < alternating.size(); ++i) {
    alternating[i] = (i % 2 == 0) ? INT64_MAX - static_cast<int64_t>(i)
                                  : INT64_MIN + static_cast<int64_t>(i);
  }
  const auto worst = RleColumn<int64_t>::FromValues(alternating);
  EXPECT_EQ(worst.run_count(), alternating.size());
  ExpectRoundTrip(alternating, worst, "rle worst-case");

  // Empty chunk: zero runs, zero rows.
  const auto empty = RleColumn<int64_t>::FromValues(AlignedVector<int64_t>{});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.run_count(), 0u);
}

TEST(ForRoundTripTest, RebaseRoundTripsEveryAwkwardSize) {
  Xoshiro256 rng(23);
  for (const size_t rows : kAwkwardRows) {
    if (rows == 0) continue;  // Builder never emits zero-row chunks.
    AlignedVector<int64_t> values(rows);
    // A far-from-zero frame: FoR stores value - min, so the absolute
    // magnitude must not matter as long as the *range* fits.
    const int64_t frame = -1234567890123LL;
    for (auto& v : values) {
      v = frame + static_cast<int64_t>(rng.NextBounded(1u << 20));
    }
    const auto column = ForColumn<int64_t>::TryFromValues(values);
    ASSERT_TRUE(column.has_value()) << "rows=" << rows;
    ExpectRoundTrip(values, *column, "for");
    EXPECT_EQ(column->base(), *std::min_element(values.begin(), values.end()));
    EXPECT_LE(column->bit_width(), kMaxPackedBits);
  }
}

TEST(ForRoundTripTest, FullTypeRangeRefusesToEncode) {
  // INT64_MIN..INT64_MAX spans 64 delta bits — far past kMaxPackedBits;
  // the encoder must refuse (the builder then falls back to plain), never
  // wrap silently.
  AlignedVector<int64_t> values = {INT64_MIN, 0, INT64_MAX};
  EXPECT_FALSE(ForColumn<int64_t>::TryFromValues(values).has_value());

  AlignedVector<int32_t> narrow32 = {INT32_MIN, INT32_MAX};
  EXPECT_FALSE(ForColumn<int32_t>::TryFromValues(narrow32).has_value());

  // But a range that *fits* right at a negative base must be exact:
  // wraparound subtraction makes value - base well-defined across zero.
  AlignedVector<int64_t> spanning = {INT64_MIN, INT64_MIN + 100,
                                     INT64_MIN + (1 << 25)};
  const auto column = ForColumn<int64_t>::TryFromValues(spanning);
  ASSERT_TRUE(column.has_value());
  EXPECT_EQ(column->base(), INT64_MIN);
  ExpectRoundTrip(spanning, *column, "for spanning");

  // Boundary: exactly kMaxPackedBits of range encodes...
  AlignedVector<uint32_t> fits = {0u, (1u << kMaxPackedBits) - 1u};
  EXPECT_TRUE(ForColumn<uint32_t>::TryFromValues(fits).has_value());
  // ... one more bit does not.
  AlignedVector<uint32_t> overflows = {0u, 1u << kMaxPackedBits};
  EXPECT_FALSE(ForColumn<uint32_t>::TryFromValues(overflows).has_value());
}

TEST(DeltaRoundTripTest, MonotoneAndDecreasingEveryAwkwardSize) {
  Xoshiro256 rng(29);
  for (const size_t rows : kAwkwardRows) {
    if (rows == 0) continue;
    // Increasing (the timestamp shape), decreasing (negative zigzag
    // diffs), and a random walk mixing both signs.
    AlignedVector<int64_t> increasing(rows), decreasing(rows), walk(rows);
    int64_t up = 1700000000000LL, down = 0, wander = 0;
    for (size_t i = 0; i < rows; ++i) {
      up += static_cast<int64_t>(rng.NextBounded(1000));
      down -= static_cast<int64_t>(rng.NextBounded(1000));
      wander += static_cast<int64_t>(rng.NextBounded(2001)) - 1000;
      increasing[i] = up;
      decreasing[i] = down;
      walk[i] = wander;
    }
    for (const auto* values : {&increasing, &decreasing, &walk}) {
      const auto column = DeltaColumn<int64_t>::TryFromValues(*values);
      ASSERT_TRUE(column.has_value()) << "rows=" << rows;
      ExpectRoundTrip(*values, *column, "delta");
      // Block metadata must carry the true bounds — the scan prunes and
      // emits whole blocks from them without reconstructing.
      for (size_t b = 0; b < column->blocks().size(); ++b) {
        const auto& meta = column->blocks()[b];
        const size_t start = b * kDeltaBlockRows;
        const auto begin = values->begin() + static_cast<ptrdiff_t>(start);
        const auto end = begin + static_cast<ptrdiff_t>(meta.rows);
        const auto [lo, hi] = std::minmax_element(begin, end);
        EXPECT_EQ(meta.min, *lo) << "rows=" << rows << " block " << b;
        EXPECT_EQ(meta.max, *hi) << "rows=" << rows << " block " << b;
      }
    }
  }
}

TEST(DeltaRoundTripTest, DecodeBlockMatchesValueAt) {
  Xoshiro256 rng(31);
  AlignedVector<int32_t> values(kDeltaBlockRows * 2 + 17);
  int32_t current = 0;
  for (auto& v : values) {
    current += static_cast<int32_t>(rng.NextBounded(201)) - 100;
    v = current;
  }
  const auto column = DeltaColumn<int32_t>::TryFromValues(values);
  ASSERT_TRUE(column.has_value());
  AlignedVector<int32_t> decoded(kDeltaBlockRows);
  size_t row = 0;
  for (size_t b = 0; b < column->blocks().size(); ++b) {
    const size_t block_rows = column->DecodeBlock(b, decoded.data());
    for (size_t i = 0; i < block_rows; ++i, ++row) {
      ASSERT_EQ(decoded[i], values[row]) << "block " << b << " offset " << i;
    }
  }
  EXPECT_EQ(row, values.size());
}

TEST(DeltaRoundTripTest, WideDiffsRefuseToEncode) {
  // A single jump wider than kMaxDeltaBits zigzag bits must refuse; the
  // builder falls back to plain for the chunk.
  AlignedVector<int64_t> values = {0, int64_t{1} << 60};
  EXPECT_FALSE(DeltaColumn<int64_t>::TryFromValues(values).has_value());

  // The widest representable diff still encodes: zigzag of +/-
  // 2^(kMaxDeltaBits-1)-ish magnitudes stays within kMaxDeltaBits.
  const int64_t max_step = (int64_t{1} << (kMaxDeltaBits - 1)) - 1;
  AlignedVector<int64_t> edge = {0, max_step, 0, -max_step};
  const auto column = DeltaColumn<int64_t>::TryFromValues(edge);
  ASSERT_TRUE(column.has_value());
  ExpectRoundTrip(edge, *column, "delta edge");
}

TEST(DeltaRoundTripTest, ZigZagAndWideWindowPrimitives) {
  // ZigZag/UnZigZag are inverses over both signs and the extremes.
  using D = DeltaColumn<int64_t>;
  for (const int64_t prev : {int64_t{0}, int64_t{-5}, INT64_MIN, INT64_MAX}) {
    for (const int64_t next :
         {int64_t{0}, int64_t{7}, int64_t{-7}, INT64_MIN, INT64_MAX}) {
      const uint64_t zz = D::ZigZag(prev, next);
      const uint64_t diff = D::UnZigZag(zz);
      EXPECT_EQ(static_cast<int64_t>(static_cast<uint64_t>(prev) + diff),
                next)
          << "prev=" << prev << " next=" << next;
    }
  }

  // WriteWide/ExtractWide round-trip at every width, at bit offsets that
  // sweep all 8 byte phases.
  Xoshiro256 rng(37);
  for (int bits = 1; bits <= kMaxDeltaBits; ++bits) {
    AlignedVector<uint8_t> packed(256, 0);
    const uint64_t mask =
        bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
    std::vector<uint64_t> expected;
    for (size_t i = 0; i < 16; ++i) {
      const uint64_t value = rng.Next() & mask;
      expected.push_back(value);
      D::WriteWide(packed.data(), i * static_cast<uint64_t>(bits), bits,
                   value);
    }
    for (size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(D::ExtractWide(packed.data(),
                               i * static_cast<uint64_t>(bits), bits),
                expected[i])
          << "bits=" << bits << " slot " << i;
    }
  }
}

// The builder's per-chunk fallback: a chunk whose data cannot carry the
// requested encoding stores plain, and the table still round-trips. Chunk
// size 17 makes runs cross chunk tails mid-run.
TEST(TableBuilderEncodingTest, PerChunkFallbackPreservesValues) {
  TableBuilder builder({{"ts", DataType::kInt64},
                        {"grp", DataType::kInt32},
                        {"f", DataType::kFloat64}},
                       /*target_chunk_size=*/17);
  builder.SetEncoding(0, ColumnEncoding::kDelta);
  builder.SetEncoding(1, ColumnEncoding::kRle);
  // FoR on float is unencodable by type: every chunk must fall back.
  builder.SetEncoding(2, ColumnEncoding::kFor);

  constexpr size_t kRows = 100;
  std::vector<int64_t> ts(kRows);
  std::vector<int32_t> grp(kRows);
  std::vector<double> f(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    // Chunk 2 (rows 34..50) carries one wide jump so *that* delta chunk
    // alone falls back to plain.
    ts[r] = r == 40 ? (int64_t{1} << 60)
                    : 1700000000000LL + static_cast<int64_t>(r) * 1000;
    grp[r] = static_cast<int32_t>(r / 10);
    f[r] = static_cast<double>(r) / 2.0;
    FTS_CHECK(builder
                  .AppendRow({Value(ts[r]), Value(grp[r]), Value(f[r])})
                  .ok());
  }
  const TablePtr table = builder.Build();
  ASSERT_EQ(table->chunk_count(), 6u);  // 5 x 17 + 15.

  size_t delta_chunks = 0, plain_ts_chunks = 0;
  size_t row = 0;
  for (ChunkId chunk_id = 0; chunk_id < table->chunk_count(); ++chunk_id) {
    const Chunk& chunk = table->chunk(chunk_id);
    const ColumnEncoding ts_encoding = chunk.column(0).encoding();
    (ts_encoding == ColumnEncoding::kDelta ? delta_chunks
                                           : plain_ts_chunks)++;
    EXPECT_EQ(chunk.column(1).encoding(), ColumnEncoding::kRle)
        << "chunk " << chunk_id;
    EXPECT_EQ(chunk.column(2).encoding(), ColumnEncoding::kPlain)
        << "chunk " << chunk_id;
    for (size_t r = 0; r < chunk.row_count(); ++r, ++row) {
      EXPECT_EQ(ValueAs<int64_t>(chunk.column(0).GetValue(r)), ts[row]);
      EXPECT_EQ(ValueAs<int32_t>(chunk.column(1).GetValue(r)), grp[row]);
      EXPECT_EQ(ValueAs<double>(chunk.column(2).GetValue(r)), f[row]);
    }
  }
  EXPECT_EQ(row, kRows);
  EXPECT_EQ(delta_chunks, 5u);     // All but the chunk holding row 40.
  EXPECT_EQ(plain_ts_chunks, 1u);  // Rows 34..50 hold the wide jump.
}

}  // namespace
}  // namespace fts
