// Scheduler-level tests for the work-stealing TaskPool and the
// morsel-driven parallel scan built on it. Everything here sticks to the
// precompiled engines (no JIT), so the whole file is meaningful under
// TSan — this test carries the `concurrency` ctest label and is a primary
// target of the FTS_SANITIZE=thread configuration.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "fts/common/cpu_info.h"
#include "fts/common/string_util.h"
#include "fts/exec/parallel_scan.h"
#include "fts/exec/task_pool.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"

namespace fts {
namespace {

TEST(TaskPoolTest, RunsEveryIndexExactlyOnce) {
  TaskPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);

  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(pool.stats().executed, kCount);
}

TEST(TaskPoolTest, ReusableAcrossBatches) {
  TaskPool pool(3);
  std::atomic<size_t> total{0};
  for (int batch = 0; batch < 8; ++batch) {
    pool.ParallelFor(17, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 8u * 17u);
}

TEST(TaskPoolTest, StealsWhenOneWorkerIsSlow) {
  TaskPool pool(4);
  // Tasks are dealt round-robin, so worker 0 owns indices 0, 4, 8, ...
  // Index 0 sleeps while 15 more tasks sit in worker 0's deque; the other
  // workers drain their own queues and must steal to finish the batch.
  constexpr size_t kCount = 64;
  std::atomic<size_t> done{0};
  pool.ParallelFor(kCount, [&](size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(100));
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), kCount);
  EXPECT_GT(pool.stats().steals, 0u);
}

TEST(TaskPoolTest, NestedParallelForRunsInline) {
  TaskPool pool(4);
  std::atomic<size_t> inner_total{0};
  // A body that submits back into the pool must not deadlock: the nested
  // call runs inline on the worker instead of queueing behind itself.
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 64u);
}

TEST(TaskPoolTest, SingleThreadPoolRunsInlineWithoutThreads) {
  TaskPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  size_t total = 0;  // Not atomic on purpose: everything runs inline.
  pool.ParallelFor(100, [&](size_t) { ++total; });
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(pool.stats().executed, 0u);  // Inline work bypasses the queues.
}

TEST(TaskPoolTest, BodyExceptionPropagatesToCaller) {
  TaskPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(16,
                       [&](size_t i) {
                         if (i == 11) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives the failed batch.
  std::atomic<size_t> total{0};
  pool.ParallelFor(16, [&](size_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 16u);
}

TEST(TaskPoolTest, ThreadCountFromEnvHonorsOverrideAndClamps) {
  ::setenv("FTS_THREADS", "3", 1);
  EXPECT_EQ(TaskPool::ThreadCountFromEnv(1), 3);
  ::setenv("FTS_THREADS", "0", 1);
  EXPECT_EQ(TaskPool::ThreadCountFromEnv(5), 5);
  ::setenv("FTS_THREADS", "99999", 1);
  EXPECT_EQ(TaskPool::ThreadCountFromEnv(1), kMaxTaskPoolThreads);
  ::unsetenv("FTS_THREADS");
  EXPECT_EQ(TaskPool::ThreadCountFromEnv(7), 7);
}

// ---------------------------------------------------------------------------
// Parallel scan on top of the pool: many small chunks, static engines only.

GeneratedScanTable SmallChunkTable() {
  ScanTableOptions options;
  options.rows = 20'000;
  options.selectivities = {0.3, 0.5};
  options.seed = 11;
  options.chunk_size = 257;  // 78 morsels, awkward tail.
  return MakeScanTable(options);
}

ScanSpec SpecFor(const GeneratedScanTable& generated) {
  ScanSpec spec;
  for (size_t i = 0; i < generated.search_values.size(); ++i) {
    spec.predicates.push_back({StrFormat("c%zu", i), CompareOp::kEq,
                               Value(generated.search_values[i])});
  }
  return spec;
}

TEST(ParallelScanTest, ManySmallMorselsMatchSerialExecution) {
  const GeneratedScanTable generated = SmallChunkTable();
  const ScanSpec spec = SpecFor(generated);
  const auto scanner = TableScanner::Prepare(generated.table, spec);
  ASSERT_TRUE(scanner.ok());

  const auto serial = scanner->Execute(ScanEngine::kScalarFused);
  ASSERT_TRUE(serial.ok());
  const auto serial_count = scanner->ExecuteCount(ScanEngine::kScalarFused);
  ASSERT_TRUE(serial_count.ok());
  EXPECT_EQ(*serial_count, generated.stage_matches.back());

  TaskPool pool(4);
  for (int round = 0; round < 4; ++round) {
    ParallelScanOptions options;
    options.requested = {ScanEngine::kScalarFused, 0};
    options.fallback = FallbackPolicy::kStrict;
    options.pool = &pool;
    ExecutionReport report;
    const auto parallel = ExecuteParallelScan(*scanner, options, &report);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ(parallel->chunks.size(), serial->chunks.size());
    for (size_t i = 0; i < serial->chunks.size(); ++i) {
      ASSERT_EQ(parallel->chunks[i].chunk_id, serial->chunks[i].chunk_id);
      ASSERT_EQ(parallel->chunks[i].positions, serial->chunks[i].positions)
          << "chunk " << i << " round " << round;
    }
    EXPECT_EQ(report.worker_count, 4);
    EXPECT_EQ(report.morsel_count, generated.table->chunk_count());
    EXPECT_FALSE(report.degraded);

    const auto count = ExecuteParallelScanCount(*scanner, options);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, *serial_count);
  }
}

TEST(ParallelScanTest, StrictUnavailableEngineFailsDeterministically) {
  const GeneratedScanTable generated = SmallChunkTable();
  const auto scanner =
      TableScanner::Prepare(generated.table, SpecFor(generated));
  ASSERT_TRUE(scanner.ok());

  // kJit under kStrict needs JitScanEngine; the morsel runner reports the
  // first chunk's failure no matter which worker hit it first.
  ParallelScanOptions options;
  options.requested = {ScanEngine::kJit, 512};
  options.fallback = FallbackPolicy::kStrict;
  options.threads = 4;
  options.cache = nullptr;
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "JIT compile attempts under TSan are pointless";
#endif
  if (GetCpuFeatures().HasFusedScanAvx512()) {
    GTEST_SKIP() << "needs a CPU where the JIT rung is unavailable";
  }
  const auto result = ExecuteParallelScan(*scanner, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(ParallelScanTest, LadderDemotesPerMorselWithoutChangingOutput) {
  const GeneratedScanTable generated = SmallChunkTable();
  const ScanSpec spec = SpecFor(generated);
  const auto scanner = TableScanner::Prepare(generated.table, spec);
  ASSERT_TRUE(scanner.ok());
  const auto reference = scanner->Execute(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(reference.ok());

  // Request the deepest static rung with the ladder on. On AVX-512
  // hardware nothing demotes; elsewhere every morsel walks down to a rung
  // that runs. Either way the merged output equals the reference.
  ParallelScanOptions options;
  options.requested = {ScanEngine::kAvx512Fused512, 0};
  options.fallback = FallbackPolicy::kLadder;
  options.threads = 4;
  ExecutionReport report;
  const auto parallel = ExecuteParallelScan(*scanner, options, &report);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(parallel->chunks.size(), reference->chunks.size());
  for (size_t i = 0; i < reference->chunks.size(); ++i) {
    ASSERT_EQ(parallel->chunks[i].positions, reference->chunks[i].positions)
        << "chunk " << i;
  }
  ASSERT_EQ(report.morsel_choices.size(), generated.table->chunk_count());
  for (const EngineChoice& choice : report.morsel_choices) {
    EXPECT_EQ(choice.engine, report.executed.engine);
  }
  EXPECT_EQ(report.degraded,
            report.executed.engine != ScanEngine::kAvx512Fused512);
}

}  // namespace
}  // namespace fts
