#include <gtest/gtest.h>

#include "fts/common/random.h"
#include "fts/perf/cache_sim.h"
#include "fts/storage/data_generator.h"

namespace fts {
namespace {

// A tiny 2-level hierarchy for deterministic behaviour checks:
// L1 = 4 lines direct-ish (1 set x 4 ways), L2 = 16 lines (4 x 4).
CacheHierarchySim TinyCache() {
  return CacheHierarchySim(
      {{"L1", 4 * 64, 4}, {"L2", 16 * 64, 4}}, 64);
}

TEST(CacheSimTest, ColdMissesThenHits) {
  CacheHierarchySim cache = TinyCache();
  cache.Access(0);
  cache.Access(0);
  cache.Access(64);
  cache.Access(64);
  const auto& l1 = cache.stats()[0];
  EXPECT_EQ(l1.accesses, 4u);
  EXPECT_EQ(l1.misses, 2u);
  EXPECT_EQ(l1.hits, 2u);
  // Both cold misses reached memory.
  EXPECT_EQ(cache.memory_accesses(), 2u);
  EXPECT_EQ(cache.MemoryTrafficBytes(), 128u);
}

TEST(CacheSimTest, LruEviction) {
  CacheHierarchySim cache = TinyCache();
  // L1 holds 4 lines; the 5th evicts the least-recently-used (line 0).
  for (uint64_t line = 0; line < 5; ++line) cache.Access(line * 64);
  cache.Access(0);  // Must miss L1, hit L2.
  const auto& l1 = cache.stats()[0];
  const auto& l2 = cache.stats()[1];
  EXPECT_EQ(l1.misses, 6u);
  EXPECT_EQ(l2.hits, 1u);
  EXPECT_EQ(cache.memory_accesses(), 5u);
}

TEST(CacheSimTest, LruKeepsHotLine) {
  CacheHierarchySim cache = TinyCache();
  cache.Access(0);
  for (uint64_t line = 1; line < 5; ++line) {
    cache.Access(0);  // Keep line 0 hot.
    cache.Access(line * 64);
  }
  // Line 0 must still be resident in L1.
  const uint64_t hits_before = cache.stats()[0].hits;
  cache.Access(0);
  EXPECT_EQ(cache.stats()[0].hits, hits_before + 1);
}

TEST(CacheSimTest, WorkingSetBiggerThanLastLevelThrashes) {
  CacheHierarchySim cache = TinyCache();  // 16-line L2.
  // Stream 64 distinct lines twice: the second pass still misses L2 for
  // lines evicted during the first (classic streaming pattern).
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t line = 0; line < 64; ++line) cache.Access(line * 64);
  }
  EXPECT_GT(cache.memory_accesses(), 100u);
}

TEST(CacheSimTest, SequentialScanHitsWithinLine) {
  CacheHierarchySim cache = TinyCache();
  // 16 int32 accesses per 64-byte line: 1 miss + 15 hits per line.
  for (uint64_t addr = 0; addr < 4 * 64; addr += 4) cache.Access(addr);
  const auto& l1 = cache.stats()[0];
  EXPECT_EQ(l1.misses, 4u);
  EXPECT_EQ(l1.hits, 60u);
}

TEST(CacheSimTest, ResetClears) {
  CacheHierarchySim cache = TinyCache();
  cache.Access(0);
  cache.Reset();
  EXPECT_EQ(cache.stats()[0].accesses, 0u);
  cache.Access(0);
  EXPECT_EQ(cache.stats()[0].misses, 1u);  // Cold again.
}

TEST(CacheSimTest, PaperConfigShape) {
  const auto config = CacheHierarchySim::PaperTestbedConfig();
  ASSERT_EQ(config.size(), 3u);
  EXPECT_EQ(config[0].size_bytes, 32 * 1024);
  EXPECT_EQ(config[1].size_bytes, 1024 * 1024);
  CacheHierarchySim cache(config);  // Must construct without CHECKs firing.
  cache.Access(123456);
  EXPECT_EQ(cache.memory_accesses(), 1u);
}

// --- Scan replays ---------------------------------------------------------

std::vector<AlignedVector<int32_t>> MakeScanStages(
    size_t rows, double sel, uint64_t seed, std::vector<ScanStage>* out) {
  Xoshiro256 rng(seed);
  std::vector<AlignedVector<int32_t>> columns;
  out->clear();
  for (int s = 0; s < 2; ++s) {
    const auto mask = ExactSelectivityMask(
        rows, MatchCountForSelectivity(rows, sel), rng);
    columns.push_back(FillFromMask<int32_t>(mask, 5, 1000, 1 << 30, rng));
    ScanStage stage;
    stage.data = columns.back().data();
    stage.type = ScanElementType::kI32;
    stage.op = CompareOp::kEq;
    stage.value.i32 = 5;
    out->push_back(stage);
  }
  return columns;
}

TEST(CacheReplayTest, FirstColumnStreamsOncePerLine) {
  const size_t rows = 64 * 1024;
  std::vector<ScanStage> stages;
  const auto columns = MakeScanStages(rows, 0.0, 3, &stages);
  // Selectivity 0: only column 0 is ever touched -> exactly rows/16
  // compulsory line misses from memory (both columns far exceed L1/L2...
  // here the tiny default L3 keeps them; use memory_accesses of a small
  // cache for determinism).
  CacheHierarchySim cache({{"L1", 32 * 1024, 8}}, 64);
  ReplaySisdScanCacheAccesses(stages.data(), 1, rows, cache);
  EXPECT_EQ(cache.memory_accesses(), rows / 16);
  EXPECT_EQ(cache.stats()[0].accesses, rows);
}

TEST(CacheReplayTest, SelectiveScanTouchesFewerSecondColumnLines) {
  const size_t rows = 256 * 1024;
  for (const double sel : {0.001, 0.5}) {
    std::vector<ScanStage> stages;
    const auto columns = MakeScanStages(rows, sel, 7, &stages);
    CacheHierarchySim sparse({{"L1", 32 * 1024, 8}}, 64);
    ReplaySisdScanCacheAccesses(stages.data(), stages.size(), rows, sparse);
    // Lower selectivity -> fewer accesses to column 1 -> less traffic.
    if (sel == 0.001) {
      EXPECT_LT(sparse.MemoryTrafficBytes(),
                2.2 * static_cast<double>(rows) * 4);
    } else {
      EXPECT_GT(sparse.MemoryTrafficBytes(),
                1.8 * static_cast<double>(rows) * 4);
    }
  }
}

TEST(CacheReplayTest, FusedAndSisdTrafficComparable) {
  // Both implementations must fetch the same compulsory lines for the
  // first column; the fused scan's gathers touch at most the same lines
  // of the second.
  const size_t rows = 128 * 1024;
  std::vector<ScanStage> stages;
  const auto columns = MakeScanStages(rows, 0.1, 11, &stages);
  CacheHierarchySim sisd({{"L1", 32 * 1024, 8}}, 64);
  CacheHierarchySim fused({{"L1", 32 * 1024, 8}}, 64);
  ReplaySisdScanCacheAccesses(stages.data(), stages.size(), rows, sisd);
  ReplayFusedScanCacheAccesses(stages.data(), stages.size(), rows, 16,
                               fused);
  EXPECT_LE(fused.memory_accesses(), sisd.memory_accesses() + rows / 160);
}

}  // namespace
}  // namespace fts
