// Pruning-semantics tests: a zone-map-pruned scan must be byte-identical
// to the unpruned scan (PrepareOptions{use_zone_maps = false}) on
// clustered, uniform, and adversarial all-boundary data, for every engine
// and operator — and ExecutionReport must surface the pruning on both the
// serial and the morsel-parallel execution paths.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "fts/db/database.h"
#include "fts/exec/parallel_scan.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace fts {
namespace {

constexpr ScanEngine kStaticEngines[] = {
    ScanEngine::kSisdNoVec,     ScanEngine::kSisdAutoVec,
    ScanEngine::kScalarFused,   ScanEngine::kAvx2Fused128,
    ScanEngine::kAvx512Fused128, ScanEngine::kAvx512Fused256,
    ScanEngine::kAvx512Fused512, ScanEngine::kBlockwise,
};

constexpr CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kNe,
                                 CompareOp::kLt, CompareOp::kLe,
                                 CompareOp::kGt, CompareOp::kGe};

enum class Encoding { kPlain, kDictionary, kBitPacked };

TablePtr BuildInt32Table(const std::vector<int32_t>& values,
                         size_t chunk_size, Encoding encoding) {
  TableBuilder builder({{"c0", DataType::kInt32}}, chunk_size);
  if (encoding == Encoding::kDictionary) builder.SetDictionaryEncoded(0);
  if (encoding == Encoding::kBitPacked) builder.SetBitPacked(0);
  for (const int32_t v : values) {
    FTS_CHECK(builder.AppendRow({Value(v)}).ok());
  }
  return builder.Build();
}

bool Matches(CompareOp op, int32_t row, int32_t v) {
  switch (op) {
    case CompareOp::kEq: return row == v;
    case CompareOp::kNe: return row != v;
    case CompareOp::kLt: return row < v;
    case CompareOp::kLe: return row <= v;
    case CompareOp::kGt: return row > v;
    case CompareOp::kGe: return row >= v;
  }
  __builtin_unreachable();
}

uint64_t BruteCount(const std::vector<int32_t>& values, CompareOp op,
                    int32_t v) {
  uint64_t count = 0;
  for (const int32_t row : values) count += Matches(op, row, v);
  return count;
}

void ExpectSameMatches(const TableMatches& pruned,
                       const TableMatches& unpruned, const char* what) {
  ASSERT_EQ(pruned.chunks.size(), unpruned.chunks.size()) << what;
  for (size_t i = 0; i < pruned.chunks.size(); ++i) {
    EXPECT_EQ(pruned.chunks[i].chunk_id, unpruned.chunks[i].chunk_id)
        << what << " chunk " << i;
    ASSERT_EQ(pruned.chunks[i].positions, unpruned.chunks[i].positions)
        << what << " chunk " << i;
  }
}

// Runs `spec` pruned and unpruned through every available static engine and
// checks byte-identical output plus the brute-force count.
void CheckPrunedEqualsUnpruned(const TablePtr& table,
                               const std::vector<int32_t>& values,
                               const ScanSpec& spec, uint64_t expect_count) {
  const auto pruned = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  const auto unpruned = TableScanner::Prepare(
      table, spec, TableScanner::PrepareOptions{.use_zone_maps = false});
  ASSERT_TRUE(unpruned.ok()) << unpruned.status().ToString();
  // Note: the unpruned scanner can still report pruning on dictionary
  // encodings — per-chunk dictionary translation disproves or drops
  // predicates on its own, with zone maps switched off entirely.

  for (const ScanEngine engine : kStaticEngines) {
    if (!ScanEngineAvailable(engine)) continue;
    const std::string what =
        std::string(ScanEngineToString(engine)) + " " + spec.ToString();
    const auto with = pruned->Execute(engine);
    const auto without = unpruned->Execute(engine);
    ASSERT_TRUE(with.ok()) << what << ": " << with.status().ToString();
    ASSERT_TRUE(without.ok()) << what << ": " << without.status().ToString();
    ExpectSameMatches(*with, *without, what.c_str());
    EXPECT_EQ(with->TotalMatches(), expect_count) << what;
    const auto count = pruned->ExecuteCount(engine);
    ASSERT_TRUE(count.ok()) << what;
    EXPECT_EQ(*count, expect_count) << what;
  }
  (void)values;
}

std::vector<int32_t> ClusteredValues(size_t rows) {
  std::vector<int32_t> values(rows);
  for (size_t i = 0; i < rows; ++i) values[i] = static_cast<int32_t>(i);
  return values;
}

// Every chunk holds the identical value set 0..chunk_size-1, so zone-map
// pruning is all-or-nothing: no predicate can skip some chunks but not
// others.
std::vector<int32_t> UniformValues(size_t rows, size_t chunk_size) {
  std::vector<int32_t> values(rows);
  for (size_t i = 0; i < rows; ++i) {
    values[i] = static_cast<int32_t>(i % chunk_size);
  }
  return values;
}

TEST(ZonePruningTest, ClusteredDataIdenticalForEveryOpAndEncoding) {
  constexpr size_t kRows = 8000;
  constexpr size_t kChunk = 1000;
  const std::vector<int32_t> values = ClusteredValues(kRows);
  for (const Encoding encoding :
       {Encoding::kPlain, Encoding::kDictionary, Encoding::kBitPacked}) {
    const TablePtr table = BuildInt32Table(values, kChunk, encoding);
    ASSERT_EQ(table->chunk_count(), kRows / kChunk);
    // Probe values sitting exactly on chunk boundaries, mid-chunk, and
    // outside the data entirely.
    for (const int32_t v : {0, 999, 1000, 2500, 7999, 8000, -1}) {
      for (const CompareOp op : kAllOps) {
        ScanSpec spec;
        spec.predicates = {{"c0", op, Value(v)}};
        CheckPrunedEqualsUnpruned(table, values, spec,
                                  BruteCount(values, op, v));
      }
    }
  }
}

TEST(ZonePruningTest, ClusteredRangePrunesAndDropsStages) {
  constexpr size_t kRows = 8000;
  const std::vector<int32_t> values = ClusteredValues(kRows);
  const TablePtr table = BuildInt32Table(values, 1000, Encoding::kPlain);
  // [2000, 2999] covers chunk 2 exactly: both conjuncts are tautological
  // there and disproved everywhere else.
  ScanSpec spec;
  spec.predicates = {{"c0", CompareOp::kGe, Value(int32_t{2000})},
                     {"c0", CompareOp::kLe, Value(int32_t{2999})}};
  const auto scanner = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(scanner.ok());
  EXPECT_EQ(scanner->pruning().chunks_total, 8u);
  EXPECT_EQ(scanner->pruning().chunks_pruned, 7u);
  EXPECT_EQ(scanner->pruning().stages_dropped, 2u);
  EXPECT_GT(scanner->pruning().bytes_skipped, 0u);
  ASSERT_TRUE(scanner->chunk_plans()[2].stages.empty());
  EXPECT_FALSE(scanner->chunk_plans()[2].impossible);
  CheckPrunedEqualsUnpruned(table, values, spec, 1000);
}

TEST(ZonePruningTest, UniformDataPrunesAllOrNothing) {
  constexpr size_t kRows = 8000;
  const std::vector<int32_t> values = UniformValues(kRows, 1000);
  const TablePtr table = BuildInt32Table(values, 1000, Encoding::kPlain);
  for (const int32_t v : {-1, 0, 500, 999, 1000}) {
    for (const CompareOp op : kAllOps) {
      ScanSpec spec;
      spec.predicates = {{"c0", op, Value(v)}};
      const auto scanner = TableScanner::Prepare(table, spec);
      ASSERT_TRUE(scanner.ok());
      // Identical chunks mean identical zone fates: either every chunk is
      // disproved (e.g. c0 < 0) or none is. Partial pruning here would be
      // a correctness bug.
      const size_t pruned = scanner->pruning().chunks_pruned;
      EXPECT_TRUE(pruned == 0 || pruned == table->chunk_count())
          << spec.ToString() << " pruned=" << pruned;
      // Interior probes must not prune at all.
      if (v == 500) {
        EXPECT_EQ(pruned, 0u) << spec.ToString();
      }
      CheckPrunedEqualsUnpruned(table, values, spec,
                                BruteCount(values, op, v));
    }
  }
}

// Adversarial: every value sits on a type boundary and every predicate
// probes exactly those boundaries — the surface where an off-by-one in
// ClassifyZone silently drops or duplicates rows.
TEST(ZonePruningTest, AllBoundaryDataEveryOp) {
  constexpr int32_t kMin = std::numeric_limits<int32_t>::min();
  constexpr int32_t kMax = std::numeric_limits<int32_t>::max();
  std::vector<int32_t> values;
  for (size_t chunk = 0; chunk < 6; ++chunk) {
    const int32_t v = (chunk % 2 == 0) ? kMin : kMax;
    for (size_t r = 0; r < 100; ++r) values.push_back(v);
  }
  const TablePtr table = BuildInt32Table(values, 100, Encoding::kPlain);
  ASSERT_EQ(table->chunk_count(), 6u);
  for (const int32_t v : {kMin, kMax, 0}) {
    for (const CompareOp op : kAllOps) {
      ScanSpec spec;
      spec.predicates = {{"c0", op, Value(v)}};
      CheckPrunedEqualsUnpruned(table, values, spec,
                                BruteCount(values, op, v));
    }
  }
}

// A NaN in a float chunk invalidates its zone map; predicates over such a
// column must scan every chunk (no pruning) and still agree with the
// unpruned plan.
TEST(ZonePruningTest, NaNDataDisablesPruningSoundly) {
  // AppendRow's exact-representability cast rejects NaN, so attach
  // prebuilt columns chunk by chunk (the bulk-ingest path).
  TableBuilder builder({{"f", DataType::kFloat64}}, 50);
  for (int chunk = 0; chunk < 4; ++chunk) {
    AlignedVector<double> values(50);
    for (int r = 0; r < 50; ++r) {
      values[r] =
          (r == 7) ? std::nan("") : static_cast<double>(chunk * 50 + r);
    }
    FTS_CHECK(builder
                  .AddChunk({std::make_shared<ValueColumn<double>>(
                      std::move(values))})
                  .ok());
  }
  const TablePtr table = builder.Build();
  ASSERT_EQ(table->chunk_count(), 4u);
  for (const CompareOp op : kAllOps) {
    ScanSpec spec;
    spec.predicates = {{"f", op, Value(100.0)}};
    const auto pruned = TableScanner::Prepare(table, spec);
    ASSERT_TRUE(pruned.ok());
    EXPECT_EQ(pruned->pruning().chunks_pruned, 0u);
    EXPECT_EQ(pruned->pruning().stages_dropped, 0u);
    const auto unpruned = TableScanner::Prepare(
        table, spec, TableScanner::PrepareOptions{.use_zone_maps = false});
    ASSERT_TRUE(unpruned.ok());
    for (const ScanEngine engine :
         {ScanEngine::kSisdNoVec, ScanEngine::kScalarFused}) {
      const auto with = pruned->Execute(engine);
      const auto without = unpruned->Execute(engine);
      ASSERT_TRUE(with.ok() && without.ok());
      ExpectSameMatches(*with, *without, spec.ToString().c_str());
    }
  }
}

// The morsel-parallel executor prunes chunks BEFORE creating morsels: the
// result still has one (possibly empty) entry per chunk in chunk order,
// and only runnable chunks become morsels.
TEST(ZonePruningTest, ParallelScanPrunesBeforeMorselCreation) {
  const std::vector<int32_t> values = ClusteredValues(8000);
  const TablePtr table = BuildInt32Table(values, 1000, Encoding::kPlain);
  ScanSpec spec;
  spec.predicates = {{"c0", CompareOp::kGe, Value(int32_t{2000})},
                     {"c0", CompareOp::kLe, Value(int32_t{2999})}};
  const auto scanner = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(scanner.ok());

  for (const int threads : {1, 2, 4}) {
    ParallelScanOptions options;
    options.requested = {ScanEngine::kScalarFused, 0};
    options.threads = threads;
    ExecutionReport report;
    const auto result = ExecuteParallelScan(*scanner, options, &report);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->TotalMatches(), 1000u);
    ASSERT_EQ(result->chunks.size(), 8u);
    for (ChunkId chunk_id = 0; chunk_id < 8; ++chunk_id) {
      EXPECT_EQ(result->chunks[chunk_id].chunk_id, chunk_id);
      EXPECT_EQ(result->chunks[chunk_id].positions.size(),
                chunk_id == 2 ? 1000u : 0u);
    }
    // One runnable chunk -> one morsel, and the scheduler stays inline.
    EXPECT_EQ(report.morsel_count, 1u);
    EXPECT_EQ(report.worker_count, 1);
    EXPECT_EQ(report.chunks_total, 8u);
    EXPECT_EQ(report.chunks_pruned, 7u);
    EXPECT_EQ(report.stages_dropped, 2u);
    EXPECT_GT(report.bytes_skipped, 0u);

    ExecutionReport count_report;
    const auto count = ExecuteParallelScanCount(*scanner, options,
                                                &count_report);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, 1000u);
    EXPECT_EQ(count_report.chunks_pruned, 7u);
  }
}

// When the zone maps disprove every chunk, the parallel path must succeed
// with zero morsels and an empty result.
TEST(ZonePruningTest, ParallelScanAllChunksPruned) {
  const std::vector<int32_t> values = ClusteredValues(4000);
  const TablePtr table = BuildInt32Table(values, 1000, Encoding::kPlain);
  ScanSpec spec;
  spec.predicates = {{"c0", CompareOp::kGt, Value(int32_t{100000})}};
  const auto scanner = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(scanner.ok());
  ParallelScanOptions options;
  options.requested = {ScanEngine::kScalarFused, 0};
  options.threads = 4;
  ExecutionReport report;
  const auto result = ExecuteParallelScan(*scanner, options, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->TotalMatches(), 0u);
  EXPECT_EQ(report.morsel_count, 0u);
  EXPECT_EQ(report.worker_count, 1);
  EXPECT_EQ(report.chunks_pruned, 4u);
  EXPECT_EQ(report.chunks_total, 4u);
}

// End-to-end: QueryResult::execution_report carries the pruning counters on
// the serial (threads = 1) and the morsel-parallel (threads > 1) paths.
TEST(ZonePruningTest, QueryReportRecordsPruningSerialAndParallel) {
  Database db;
  ASSERT_TRUE(
      db.RegisterTable("t", BuildInt32Table(ClusteredValues(8000), 1000,
                                            Encoding::kPlain))
          .ok());
  for (const int threads : {1, 4}) {
    Database::QueryOptions options;
    options.threads = threads;
    const auto result = db.Query(
        "SELECT COUNT(*) FROM t WHERE c0 >= 2000 AND c0 <= 2999", options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->count.has_value());
    EXPECT_EQ(*result->count, 1000u);
    const ExecutionReport& report = result->execution_report;
    EXPECT_EQ(report.chunks_total, 8u) << "threads=" << threads;
    EXPECT_EQ(report.chunks_pruned, 7u) << "threads=" << threads;
    EXPECT_EQ(report.stages_dropped, 2u) << "threads=" << threads;
    EXPECT_GT(report.bytes_skipped, 0u) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace fts
