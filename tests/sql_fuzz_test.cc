// Robustness fuzzing for the SQL frontend: the lexer and parser must
// never crash or hang on arbitrary input, and valid random statements
// must round-trip through ToString().

#include <gtest/gtest.h>

#include "fts/common/random.h"
#include "fts/common/string_util.h"
#include "fts/sql/lexer.h"
#include "fts/sql/parser.h"

namespace fts {
namespace {

TEST(SqlFuzzTest, RandomBytesNeverCrash) {
  Xoshiro256 rng(0xF022);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t length = rng.NextBounded(120);
    std::string input;
    input.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      // Printable ASCII plus some whitespace.
      input.push_back(static_cast<char>(32 + rng.NextBounded(95)));
    }
    // Must return (ok or error), never crash.
    (void)ParseSelect(input);
  }
}

TEST(SqlFuzzTest, RandomTokenSoupNeverCrashes) {
  // Valid tokens in random order exercise parser state transitions more
  // deeply than raw bytes.
  static constexpr const char* kTokens[] = {
      "SELECT", "COUNT", "FROM", "WHERE", "AND",  "BETWEEN", "(", ")",
      "*",      ",",     ";",    "=",     "<>",   "<",       "<=", ">",
      ">=",     "-",     "+",    "tbl",   "col1", "42",      "3.5"};
  Xoshiro256 rng(0xF0DD);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t count = rng.NextBounded(25) + 1;
    std::vector<std::string> parts;
    parts.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      parts.emplace_back(kTokens[rng.NextBounded(std::size(kTokens))]);
    }
    (void)ParseSelect(Join(parts, " "));
  }
}

TEST(SqlFuzzTest, RandomValidStatementsRoundTrip) {
  Xoshiro256 rng(0xF055);
  for (int trial = 0; trial < 500; ++trial) {
    // Build a random valid statement.
    std::string sql = "SELECT ";
    const int projection = static_cast<int>(rng.NextBounded(3));
    if (projection == 0) {
      sql += "COUNT(*)";
    } else if (projection == 1) {
      sql += "*";
    } else {
      const size_t columns = rng.NextBounded(3) + 1;
      for (size_t c = 0; c < columns; ++c) {
        if (c > 0) sql += ", ";
        sql += StrFormat("col%zu", c);
      }
    }
    sql += " FROM t";
    const size_t predicates = rng.NextBounded(4);
    static constexpr const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    for (size_t p = 0; p < predicates; ++p) {
      sql += (p == 0) ? " WHERE " : " AND ";
      sql += StrFormat("c%zu %s %lld", p, kOps[rng.NextBounded(6)],
                       static_cast<long long>(rng.NextInRange(-100, 100)));
    }

    const auto parsed = ParseSelect(sql);
    ASSERT_TRUE(parsed.ok()) << sql << " -> " << parsed.status().ToString();
    // ToString() must itself parse to the same normal form (fixed point).
    const auto reparsed = ParseSelect(parsed->ToString());
    ASSERT_TRUE(reparsed.ok()) << parsed->ToString();
    EXPECT_EQ(reparsed->ToString(), parsed->ToString());
  }
}

TEST(SqlFuzzTest, DeepPredicateChainsParse) {
  std::string sql = "SELECT COUNT(*) FROM t WHERE c0 = 0";
  for (int p = 1; p < 200; ++p) {
    sql += StrFormat(" AND c%d = %d", p, p);
  }
  const auto parsed = ParseSelect(sql);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->predicates.size(), 200u);
}

TEST(SqlFuzzTest, PathologicalNumbersDoNotCrash) {
  for (const char* text :
       {"SELECT COUNT(*) FROM t WHERE a = 999999999999999999999999",
        "SELECT COUNT(*) FROM t WHERE a = 1e308",
        "SELECT COUNT(*) FROM t WHERE a = 1e99999",
        "SELECT COUNT(*) FROM t WHERE a = 0.000000000000000001",
        "SELECT COUNT(*) FROM t WHERE a = 1.2.3",
        "SELECT COUNT(*) FROM t WHERE a = --5",
        "SELECT COUNT(*) FROM t WHERE a = -"}) {
    (void)ParseSelect(text);
  }
}

}  // namespace
}  // namespace fts
