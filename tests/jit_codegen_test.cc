#include <gtest/gtest.h>

#include "fts/jit/code_generator.h"

namespace fts {
namespace {

JitScanSignature MakeSignature(
    std::initializer_list<JitStageSignature> stages, int bits = 512) {
  JitScanSignature signature;
  signature.stages = stages;
  signature.register_bits = bits;
  return signature;
}

TEST(SignatureTest, CacheKeyStable) {
  const auto signature =
      MakeSignature({{ScanElementType::kI32, CompareOp::kEq},
                     {ScanElementType::kU32, CompareOp::kLt}});
  EXPECT_EQ(signature.CacheKey(), "512:i32=;u32<");
  const auto narrow =
      MakeSignature({{ScanElementType::kI32, CompareOp::kEq}}, 128);
  EXPECT_EQ(narrow.CacheKey(), "128:i32=");
}

TEST(SignatureTest, DistinctSignaturesDistinctKeys) {
  const auto a = MakeSignature({{ScanElementType::kI32, CompareOp::kEq}});
  const auto b = MakeSignature({{ScanElementType::kI32, CompareOp::kNe}});
  const auto c = MakeSignature({{ScanElementType::kI64, CompareOp::kEq}});
  const auto d = MakeSignature({{ScanElementType::kI32, CompareOp::kEq}},
                               256);
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  EXPECT_NE(a.CacheKey(), c.CacheKey());
  EXPECT_NE(a.CacheKey(), d.CacheKey());
}

TEST(CodegenTest, RejectsEmptyAndOversizedChains) {
  EXPECT_FALSE(GenerateFusedScanSource(MakeSignature({})).ok());
  JitScanSignature too_long;
  too_long.stages.assign(kMaxScanStages + 1,
                         {ScanElementType::kI32, CompareOp::kEq});
  EXPECT_FALSE(GenerateFusedScanSource(too_long).ok());
}

TEST(CodegenTest, RejectsInvalidWidth) {
  auto signature = MakeSignature({{ScanElementType::kI32, CompareOp::kEq}});
  signature.register_bits = 333;
  EXPECT_FALSE(GenerateFusedScanSource(signature).ok());
}

TEST(CodegenTest, EmitsExpectedIntrinsicsFor512) {
  const auto source = GenerateFusedScanSource(
      MakeSignature({{ScanElementType::kI32, CompareOp::kEq},
                     {ScanElementType::kI32, CompareOp::kEq}}));
  ASSERT_TRUE(source.ok());
  // The Fig. 3 instruction classes must all appear.
  EXPECT_NE(source->find("_mm512_mask_cmp_epi32_mask"), std::string::npos);
  EXPECT_NE(source->find("_mm512_maskz_compress_epi32"), std::string::npos);
  EXPECT_NE(source->find("_mm512_mask_expand_epi32"), std::string::npos);
  EXPECT_NE(source->find("_mm512_mask_i32gather_epi32"), std::string::npos);
  EXPECT_NE(source->find("_mm512_mask_compressstoreu_epi32"),
            std::string::npos);
  EXPECT_NE(source->find(kJitScanSymbol), std::string::npos);
  // No 256/128-bit spellings may leak into a 512-bit operator.
  EXPECT_EQ(source->find("_mm256_"), std::string::npos);
}

TEST(CodegenTest, EmitsNarrowWidths) {
  const auto source128 = GenerateFusedScanSource(
      MakeSignature({{ScanElementType::kI32, CompareOp::kEq},
                     {ScanElementType::kI32, CompareOp::kEq}},
                    128));
  ASSERT_TRUE(source128.ok());
  EXPECT_NE(source128->find("_mm_mask_cmp_epi32_mask"), std::string::npos);
  EXPECT_NE(source128->find("_mm_mmask_i32gather_epi32"),
            std::string::npos);
  EXPECT_EQ(source128->find("_mm512_"), std::string::npos);

  const auto source256 = GenerateFusedScanSource(
      MakeSignature({{ScanElementType::kI32, CompareOp::kEq}}, 256));
  ASSERT_TRUE(source256.ok());
  EXPECT_NE(source256->find("_mm256_mask_cmp_epi32_mask"),
            std::string::npos);
}

TEST(CodegenTest, ComparatorSelectsImmediate) {
  const auto lt = GenerateFusedScanSource(
      MakeSignature({{ScanElementType::kI32, CompareOp::kLt}}));
  EXPECT_NE(lt->find("_MM_CMPINT_LT"), std::string::npos);
  const auto ge = GenerateFusedScanSource(
      MakeSignature({{ScanElementType::kU32, CompareOp::kGe}}));
  EXPECT_NE(ge->find("_MM_CMPINT_NLT"), std::string::npos);
  EXPECT_NE(ge->find("cmp_epu32"), std::string::npos);
}

TEST(CodegenTest, FloatUsesOrderedImmediates) {
  const auto source = GenerateFusedScanSource(
      MakeSignature({{ScanElementType::kF32, CompareOp::kGe},
                     {ScanElementType::kF64, CompareOp::kNe}}));
  ASSERT_TRUE(source.ok());
  EXPECT_NE(source->find("_CMP_GE_OS"), std::string::npos);
  EXPECT_NE(source->find("_CMP_NEQ_UQ"), std::string::npos);
  EXPECT_NE(source->find("_mm512_castsi512_ps"), std::string::npos);
  EXPECT_NE(source->find("_mm512_castsi512_pd"), std::string::npos);
}

TEST(CodegenTest, SixtyFourBitGathersSplitIndexList) {
  // Section V: a 64-bit column behind a 32-bit position list needs two
  // half-width gathers.
  const auto source = GenerateFusedScanSource(
      MakeSignature({{ScanElementType::kI32, CompareOp::kEq},
                     {ScanElementType::kI64, CompareOp::kEq}}));
  ASSERT_TRUE(source.ok());
  EXPECT_NE(source->find("_mm512_mask_i32gather_epi64"), std::string::npos);
  EXPECT_NE(source->find("_mm512_castsi512_si256"), std::string::npos);
  EXPECT_NE(source->find("_mm512_extracti64x4_epi64"), std::string::npos);
}

TEST(CodegenTest, SingleStageSkipsAccumulators) {
  const auto source = GenerateFusedScanSource(
      MakeSignature({{ScanElementType::kI32, CompareOp::kEq}}));
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source->find("acc1"), std::string::npos);
  EXPECT_EQ(source->find("push_1"), std::string::npos);
  EXPECT_NE(source->find("_mm512_mask_compressstoreu_epi32"),
            std::string::npos);
}

TEST(CodegenTest, PackedStageEmitsUnpackSequence) {
  auto signature = MakeSignature({{ScanElementType::kI32, CompareOp::kEq},
                                  {ScanElementType::kU32, CompareOp::kLe}});
  signature.stages[1].packed_bits = 7;
  EXPECT_EQ(signature.CacheKey(), "512:i32=;u32<=@7");
  const auto source = GenerateFusedScanSource(signature);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  // The Future-Work dataflow: multiply to bit offsets, byte-granular
  // window gather (scale 1), variable 64-bit shift, code mask.
  EXPECT_NE(source->find("_mm512_mullo_epi32"), std::string::npos);
  EXPECT_NE(source->find("col1, 1)"), std::string::npos);
  EXPECT_NE(source->find("_mm512_srlv_epi64"), std::string::npos);
  EXPECT_NE(source->find("127LL"), std::string::npos);  // (1<<7)-1.
  EXPECT_NE(source->find("_mm512_mask_cmp_epu64_mask"), std::string::npos);
}

TEST(CodegenTest, CountOnlySkipsCompressStore) {
  auto signature =
      MakeSignature({{ScanElementType::kI32, CompareOp::kEq},
                     {ScanElementType::kI32, CompareOp::kEq}});
  signature.count_only = true;
  EXPECT_EQ(signature.CacheKey(), "512:i32=;i32=#count");
  const auto source = GenerateFusedScanSource(signature);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source->find("compressstoreu"), std::string::npos);
  EXPECT_NE(source->find("__builtin_popcount"), std::string::npos);

  // Single-predicate count: also storeless.
  auto single = MakeSignature({{ScanElementType::kI32, CompareOp::kEq}});
  single.count_only = true;
  const auto single_source = GenerateFusedScanSource(single);
  ASSERT_TRUE(single_source.ok());
  EXPECT_EQ(single_source->find("compressstoreu"), std::string::npos);
}

TEST(CodegenTest, PackedValidation) {
  auto bad_type = MakeSignature({{ScanElementType::kI64, CompareOp::kEq}});
  bad_type.stages[0].packed_bits = 7;
  EXPECT_FALSE(GenerateFusedScanSource(bad_type).ok());
  auto bad_width = MakeSignature({{ScanElementType::kU32, CompareOp::kEq}});
  bad_width.stages[0].packed_bits = 27;
  EXPECT_FALSE(GenerateFusedScanSource(bad_width).ok());
}

TEST(SisdCodegenTest, PackedStageEmitsScalarUnpack) {
  auto signature = MakeSignature({{ScanElementType::kU32, CompareOp::kEq}});
  signature.stages[0].packed_bits = 5;
  const auto source = GenerateSisdScanSource(signature);
  ASSERT_TRUE(source.ok());
  EXPECT_NE(source->find("code0(i) == v0"), std::string::npos);
  EXPECT_NE(source->find("31ULL"), std::string::npos);  // (1<<5)-1.
}

TEST(SisdCodegenTest, EmitsShortCircuitChain) {
  const auto source = GenerateSisdScanSource(
      MakeSignature({{ScanElementType::kI32, CompareOp::kEq},
                     {ScanElementType::kF64, CompareOp::kLt}}));
  ASSERT_TRUE(source.ok());
  EXPECT_NE(source->find("col0[i] == v0"), std::string::npos);
  EXPECT_NE(source->find("col1[i] < v1"), std::string::npos);
  EXPECT_NE(source->find("&&"), std::string::npos);
  EXPECT_EQ(source->find("immintrin"), std::string::npos);
}

JitScanSignature MakeGatherSignature(
    std::initializer_list<JitGatherSignature> gathers) {
  JitScanSignature signature;
  signature.gathers = gathers;
  return signature;
}

TEST(GatherCodegenTest, CacheKeyCoversEveryShape) {
  const auto signature =
      MakeGatherSignature({{ScanElementType::kI32, 0, false},
                           {ScanElementType::kU32, 7, true},
                           {ScanElementType::kI64, 9, false},
                           {ScanElementType::kF64, 0, true}});
  EXPECT_EQ(signature.CacheKey(), "512:#gather:i32,u32@7d,i64@9,f64d");
  // Gather keys never collide with scan keys of the same types.
  EXPECT_NE(signature.CacheKey(),
            MakeSignature({{ScanElementType::kI32, CompareOp::kEq}})
                .CacheKey());
}

TEST(GatherCodegenTest, EmitsEveryShapeInOnePass) {
  const auto source = GenerateGatherSource(
      MakeGatherSignature({{ScanElementType::kI32, 0, false},    // Plain.
                           {ScanElementType::kF64, 0, true},     // Dict.
                           {ScanElementType::kU32, 7, true},     // Packed dict.
                           {ScanElementType::kI64, 9, false}})); // FoR.
  ASSERT_TRUE(source.ok());
  EXPECT_NE(source->find(kJitScanSymbol), std::string::npos);
  // One loop over the position list fuses all four columns.
  EXPECT_EQ(source->find("for (size_t i"),
            source->rfind("for (size_t i"));
  EXPECT_NE(source->find("dst0[i] = src0[p]"), std::string::npos);
  EXPECT_NE(source->find("dst1[i] = dict1[codes1[p]]"), std::string::npos);
  EXPECT_NE(source->find("dst2[i] = dict2[c2]"), std::string::npos);
  EXPECT_NE(source->find("base3 + c3"), std::string::npos);
  EXPECT_NE(source->find("127ULL"), std::string::npos);  // (1<<7)-1.
  EXPECT_NE(source->find("511ULL"), std::string::npos);  // (1<<9)-1.
  // The gather operator is scalar C++ — no intrinsics to gate on.
  EXPECT_EQ(source->find("immintrin"), std::string::npos);
}

TEST(GatherCodegenTest, Validation) {
  // Empty and oversized term lists.
  EXPECT_FALSE(GenerateGatherSource(JitScanSignature{}).ok());
  JitScanSignature too_many;
  too_many.gathers.assign(kMaxGatherTerms + 1,
                          {ScanElementType::kI32, 0, false});
  EXPECT_FALSE(GenerateGatherSource(too_many).ok());
  // Gather terms do not combine with scan stages or aggregates.
  auto mixed = MakeSignature({{ScanElementType::kI32, CompareOp::kEq}});
  mixed.gathers.push_back({ScanElementType::kI32, 0, false});
  EXPECT_FALSE(GenerateGatherSource(mixed).ok());
  // Frame-of-reference never decodes floats.
  EXPECT_FALSE(
      GenerateGatherSource(
          MakeGatherSignature({{ScanElementType::kF32, 7, false}}))
          .ok());
  // Packed widths beyond 26 bits are rejected like the scan generator.
  EXPECT_FALSE(
      GenerateGatherSource(
          MakeGatherSignature({{ScanElementType::kU32, 27, true}}))
          .ok());
}

}  // namespace
}  // namespace fts
