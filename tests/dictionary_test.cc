#include <gtest/gtest.h>

#include "fts/storage/dictionary_column.h"

namespace fts {
namespace {

DictionaryColumn<int32_t> MakeColumn(std::initializer_list<int32_t> values) {
  AlignedVector<int32_t> data(values);
  return DictionaryColumn<int32_t>::FromValues(data);
}

TEST(DictionaryColumnTest, BuildsSortedUniqueDictionary) {
  const auto column = MakeColumn({7, 3, 7, 1, 3, 9});
  EXPECT_EQ(column.dictionary(), (std::vector<int32_t>{1, 3, 7, 9}));
  EXPECT_EQ(column.codes(), (AlignedVector<uint32_t>{2, 1, 2, 0, 1, 3}));
  EXPECT_EQ(column.size(), 6u);
  EXPECT_EQ(column.dictionary_size(), 4u);
}

TEST(DictionaryColumnTest, DecodesValues) {
  const auto column = MakeColumn({7, 3, 9});
  EXPECT_EQ(ValueAs<int>(column.GetValue(0)), 7);
  EXPECT_EQ(ValueAs<int>(column.GetValue(1)), 3);
  EXPECT_EQ(ValueAs<int>(column.GetValue(2)), 9);
}

// Oracle: evaluate the original predicate per row and compare with the
// translated code-space predicate per row.
void CheckTranslation(const DictionaryColumn<int32_t>& column, CompareOp op,
                      int32_t search) {
  const DictionaryPredicate translated = column.TranslatePredicate(op, search);
  for (size_t row = 0; row < column.size(); ++row) {
    const int32_t value = column.dictionary()[column.codes()[row]];
    const bool expected = EvaluateCompare(op, value, search);
    bool actual = false;
    switch (translated.kind) {
      case DictionaryPredicate::Kind::kNone:
        actual = false;
        break;
      case DictionaryPredicate::Kind::kAll:
        actual = true;
        break;
      case DictionaryPredicate::Kind::kCompare:
        actual = EvaluateCompare(translated.op, column.codes()[row],
                                 translated.code);
        break;
    }
    ASSERT_EQ(actual, expected)
        << "op=" << CompareOpToString(op) << " search=" << search
        << " row=" << row << " value=" << value;
  }
}

class DictionaryTranslationTest
    : public ::testing::TestWithParam<CompareOp> {};

TEST_P(DictionaryTranslationTest, MatchesValueSpacePredicate) {
  const auto column = MakeColumn({10, 20, 20, 30, 40, 40, 50});
  // Probe present values, absent interior values, and out-of-range values.
  for (const int32_t search : {5, 10, 15, 20, 30, 45, 50, 55}) {
    CheckTranslation(column, GetParam(), search);
  }
}

TEST_P(DictionaryTranslationTest, SingleValueColumn) {
  const auto column = MakeColumn({42, 42, 42});
  for (const int32_t search : {41, 42, 43}) {
    CheckTranslation(column, GetParam(), search);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, DictionaryTranslationTest,
                         ::testing::ValuesIn(kAllCompareOps),
                         [](const auto& info) {
                           switch (info.param) {
                             case CompareOp::kEq:
                               return "Eq";
                             case CompareOp::kNe:
                               return "Ne";
                             case CompareOp::kLt:
                               return "Lt";
                             case CompareOp::kLe:
                               return "Le";
                             case CompareOp::kGt:
                               return "Gt";
                             case CompareOp::kGe:
                               return "Ge";
                           }
                           return "Unknown";
                         });

TEST(DictionaryPredicateTest, EqAbsentIsNone) {
  const auto column = MakeColumn({10, 20});
  EXPECT_EQ(column.TranslatePredicate(CompareOp::kEq, 15).kind,
            DictionaryPredicate::Kind::kNone);
}

TEST(DictionaryPredicateTest, NeAbsentIsAll) {
  const auto column = MakeColumn({10, 20});
  EXPECT_EQ(column.TranslatePredicate(CompareOp::kNe, 15).kind,
            DictionaryPredicate::Kind::kAll);
}

TEST(DictionaryPredicateTest, RangeCollapse) {
  const auto column = MakeColumn({10, 20});
  EXPECT_EQ(column.TranslatePredicate(CompareOp::kLt, 5).kind,
            DictionaryPredicate::Kind::kNone);
  EXPECT_EQ(column.TranslatePredicate(CompareOp::kLt, 100).kind,
            DictionaryPredicate::Kind::kAll);
  EXPECT_EQ(column.TranslatePredicate(CompareOp::kGe, 5).kind,
            DictionaryPredicate::Kind::kAll);
  EXPECT_EQ(column.TranslatePredicate(CompareOp::kGt, 100).kind,
            DictionaryPredicate::Kind::kNone);
}

TEST(DictionaryPredicateTest, CompareOpHelpers) {
  EXPECT_EQ(NegateCompareOp(CompareOp::kEq), CompareOp::kNe);
  EXPECT_EQ(NegateCompareOp(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(NegateCompareOp(NegateCompareOp(CompareOp::kLe)),
            CompareOp::kLe);
  EXPECT_EQ(FlipCompareOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(FlipCompareOp(CompareOp::kEq), CompareOp::kEq);
  // a < b  <=>  b > a for all pairs.
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (const CompareOp op : kAllCompareOps) {
        EXPECT_EQ(EvaluateCompare(op, a, b),
                  EvaluateCompare(FlipCompareOp(op), b, a));
        EXPECT_NE(EvaluateCompare(op, a, b),
                  EvaluateCompare(NegateCompareOp(op), a, b));
      }
    }
  }
}

}  // namespace
}  // namespace fts
