// Property-based cross-engine equivalence: for randomly generated tables,
// schemas, predicates, encodings, and chunkings, every execution engine
// must return exactly the same set of rows, and that set must equal a
// brute-force row-by-row oracle.

#include <gtest/gtest.h>

#include "fts/common/cpu_info.h"
#include "fts/common/random.h"
#include "fts/common/string_util.h"
#include "fts/jit/jit_scan_engine.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/table_builder.h"
#include "test_util.h"

namespace fts {
namespace {

struct RandomQueryCase {
  TablePtr table;
  ScanSpec spec;
  std::vector<uint32_t> oracle_rows;  // Global row ids (chunk-major).
};

Value RandomLiteral(DataType type, Xoshiro256& rng) {
  const int64_t magnitude = static_cast<int64_t>(rng.NextBounded(20)) - 10;
  switch (type) {
    case DataType::kInt32:
      return Value(static_cast<int32_t>(magnitude));
    case DataType::kInt64:
      return Value(static_cast<int64_t>(magnitude) * 1000000007LL);
    case DataType::kUInt32:
      return Value(static_cast<uint32_t>(magnitude + 10));
    case DataType::kFloat64:
      return Value(static_cast<double>(magnitude) / 2.0);
    default:
      return Value(static_cast<int32_t>(magnitude));
  }
}

RandomQueryCase MakeCase(uint64_t seed) {
  Xoshiro256 rng(seed);
  RandomQueryCase result;

  const size_t rows = rng.NextBounded(5000) + 1;
  const size_t num_columns = rng.NextBounded(4) + 1;
  const DataType kTypes[] = {DataType::kInt32, DataType::kInt64,
                             DataType::kUInt32, DataType::kFloat64};

  std::vector<ColumnDefinition> schema;
  for (size_t c = 0; c < num_columns; ++c) {
    schema.push_back({StrFormat("c%zu", c), kTypes[rng.NextBounded(4)]});
  }
  const size_t chunk_size = rng.NextBounded(3) == 0
                                ? rng.NextBounded(rows) + 1
                                : rows;
  TableBuilder builder(schema, chunk_size);
  for (size_t c = 0; c < num_columns; ++c) {
    // Every encoding the storage layer carries; the oracle is boxed
    // values, so a mismatch in any compressed-domain path (RLE run
    // classification, FoR rebase, delta reconstruction) fails here too.
    // Bit-packing needs a dictionary-sized value domain; the small
    // literal range used here always fits kMaxPackedBits, and FoR/delta
    // on float columns fall back to plain per chunk by design.
    constexpr ColumnEncoding kDraw[] = {
        ColumnEncoding::kPlain,     ColumnEncoding::kDictionary,
        ColumnEncoding::kBitPacked, ColumnEncoding::kRle,
        ColumnEncoding::kFor,       ColumnEncoding::kDelta};
    builder.SetEncoding(c, kDraw[rng.NextBounded(std::size(kDraw))]);
  }

  // Populate with small-cardinality values so predicates hit often.
  std::vector<std::vector<Value>> cells(rows);
  for (size_t r = 0; r < rows; ++r) {
    cells[r].reserve(num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      cells[r].push_back(RandomLiteral(schema[c].type, rng));
    }
    FTS_CHECK(builder.AppendRow(cells[r]).ok());
  }
  result.table = builder.Build();

  const size_t num_predicates = rng.NextBounded(4) + 1;
  for (size_t p = 0; p < num_predicates; ++p) {
    const size_t column = rng.NextBounded(num_columns);
    PredicateSpec predicate;
    predicate.column = schema[column].name;
    predicate.op = kAllCompareOps[rng.NextBounded(6)];
    predicate.value = RandomLiteral(schema[column].type, rng);
    result.spec.predicates.push_back(predicate);
  }

  // Brute-force oracle over boxed values (independent of every kernel).
  for (size_t r = 0; r < rows; ++r) {
    bool all = true;
    for (const auto& predicate : result.spec.predicates) {
      const size_t column =
          *result.table->ColumnIndex(predicate.column);
      const double lhs = ValueAs<double>(cells[r][column]);
      // Cast the literal the way the scan does (to the column type).
      const auto casted =
          CastValue(predicate.value, schema[column].type);
      FTS_CHECK(casted.ok());
      const double rhs = ValueAs<double>(*casted);
      // double holds all test values exactly (small ints, halves).
      if (!EvaluateCompare(predicate.op, lhs, rhs)) {
        all = false;
        break;
      }
    }
    if (all) result.oracle_rows.push_back(static_cast<uint32_t>(r));
  }
  return result;
}

std::vector<uint32_t> Flatten(const TableMatches& matches,
                              const Table& table) {
  std::vector<uint32_t> rows;
  size_t base = 0;
  for (ChunkId chunk_id = 0; chunk_id < table.chunk_count(); ++chunk_id) {
    for (const auto& chunk : matches.chunks) {
      if (chunk.chunk_id != chunk_id) continue;
      for (const uint32_t pos : chunk.positions) {
        rows.push_back(static_cast<uint32_t>(base + pos));
      }
    }
    base += table.chunk(chunk_id).row_count();
  }
  return rows;
}

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyTest, AllEnginesMatchOracle) {
  const RandomQueryCase test_case = MakeCase(GetParam());

  // The scan may reject predicates whose literal is not exactly
  // representable in the column type (e.g. 2.5 against int32). The
  // property then is: every engine rejects identically.
  const auto prepared =
      TableScanner::Prepare(test_case.table, test_case.spec);
  if (!prepared.ok()) {
    for (const ScanEngine engine :
         {ScanEngine::kSisdNoVec, ScanEngine::kAvx512Fused512}) {
      if (!ScanEngineAvailable(engine)) continue;
      EXPECT_FALSE(
          ExecuteScan(test_case.table, test_case.spec, engine).ok());
    }
    return;
  }

  for (const ScanEngine engine :
       {ScanEngine::kSisdNoVec, ScanEngine::kSisdAutoVec,
        ScanEngine::kScalarFused, ScanEngine::kAvx2Fused128,
        ScanEngine::kAvx512Fused128, ScanEngine::kAvx512Fused256,
        ScanEngine::kAvx512Fused512, ScanEngine::kBlockwise}) {
    if (!ScanEngineAvailable(engine)) continue;
    const auto matches = prepared->Execute(engine);
    ASSERT_TRUE(matches.ok())
        << ScanEngineToString(engine) << ": " << matches.status().ToString();
    const auto rows = Flatten(*matches, *test_case.table);
    ASSERT_EQ(rows, test_case.oracle_rows)
        << ScanEngineToString(engine) << " seed=" << GetParam()
        << " spec=" << test_case.spec.ToString() << "\n"
        << testing::ReplayCommand("property_test", GetParam());
  }
}

// FTS_TEST_SEED=<seed> narrows the suite to one replayed seed.
INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::ValuesIn(testing::SeedRange(1, 41)));

// The JIT engine is expensive per distinct signature; run fewer seeds.
class JitPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JitPropertyTest, JitMatchesOracle) {
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    GTEST_SKIP() << "AVX-512 not available";
  }
  const RandomQueryCase test_case = MakeCase(GetParam());
  const auto prepared =
      TableScanner::Prepare(test_case.table, test_case.spec);
  if (!prepared.ok()) return;

  JitScanEngine engine(512);
  const auto matches = engine.Execute(test_case.table, test_case.spec);
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  EXPECT_EQ(Flatten(*matches, *test_case.table), test_case.oracle_rows)
      << " seed=" << GetParam() << " spec=" << test_case.spec.ToString()
      << "\n" << testing::ReplayCommand("property_test", GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitPropertyTest,
                         ::testing::ValuesIn(testing::SeedRange(100, 106)));

}  // namespace
}  // namespace fts
