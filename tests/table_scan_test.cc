#include <gtest/gtest.h>

#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"
#include "fts/storage/table_builder.h"

namespace fts {
namespace {

ScanSpec TwoPredicateSpec(const GeneratedScanTable& generated) {
  ScanSpec spec;
  spec.predicates = {
      {"c0", CompareOp::kEq, Value(generated.search_values[0])},
      {"c1", CompareOp::kEq, Value(generated.search_values[1])}};
  return spec;
}

std::vector<ScanEngine> TestableEngines() {
  std::vector<ScanEngine> engines;
  for (const ScanEngine engine :
       {ScanEngine::kSisdNoVec, ScanEngine::kSisdAutoVec,
        ScanEngine::kScalarFused, ScanEngine::kAvx2Fused128,
        ScanEngine::kAvx512Fused128, ScanEngine::kAvx512Fused256,
        ScanEngine::kAvx512Fused512, ScanEngine::kBlockwise}) {
    if (ScanEngineAvailable(engine)) engines.push_back(engine);
  }
  return engines;
}

class TableScanEngineTest : public ::testing::TestWithParam<ScanEngine> {};

TEST_P(TableScanEngineTest, MatchesGroundTruth) {
  ScanTableOptions options;
  options.rows = 20000;
  options.selectivities = {0.05, 0.5};
  options.seed = 31;
  const GeneratedScanTable generated = MakeScanTable(options);

  const auto matches =
      ExecuteScan(generated.table, TwoPredicateSpec(generated), GetParam());
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  EXPECT_EQ(matches->TotalMatches(), generated.stage_matches.back());

  // Verify each reported position against the oracle mask.
  for (const ChunkMatches& chunk : matches->chunks) {
    for (const uint32_t pos : chunk.positions) {
      EXPECT_TRUE(generated.final_mask[pos]) << "position " << pos;
    }
  }
}

TEST_P(TableScanEngineTest, ChunkedTableAgrees) {
  ScanTableOptions options;
  options.rows = 10000;
  options.selectivities = {0.1, 0.5};
  options.seed = 32;
  options.chunk_size = 1234;
  const GeneratedScanTable generated = MakeScanTable(options);

  const auto matches =
      ExecuteScan(generated.table, TwoPredicateSpec(generated), GetParam());
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  EXPECT_EQ(matches->chunks.size(), generated.table->chunk_count());
  EXPECT_EQ(matches->TotalMatches(), generated.stage_matches.back());
}

TEST_P(TableScanEngineTest, DictionaryEncodedAgrees) {
  ScanTableOptions options;
  options.rows = 8000;
  options.selectivities = {0.2, 0.5};
  options.seed = 33;
  options.dictionary_encode = true;
  const GeneratedScanTable generated = MakeScanTable(options);

  const auto matches =
      ExecuteScan(generated.table, TwoPredicateSpec(generated), GetParam());
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  EXPECT_EQ(matches->TotalMatches(), generated.stage_matches.back());
}

TEST_P(TableScanEngineTest, CountAgreesWithCollect) {
  ScanTableOptions options;
  options.rows = 5000;
  options.selectivities = {0.3, 0.5};
  options.seed = 34;
  const GeneratedScanTable generated = MakeScanTable(options);

  const ScanSpec spec = TwoPredicateSpec(generated);
  const auto count = ExecuteScanCount(generated.table, spec, GetParam());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, generated.stage_matches.back());
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, TableScanEngineTest, ::testing::ValuesIn(TestableEngines()),
    [](const auto& info) {
      std::string name = ScanEngineToString(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(TableScannerTest, UnknownColumnFails) {
  ScanTableOptions options;
  options.rows = 100;
  options.selectivities = {0.5};
  const auto generated = MakeScanTable(options);
  ScanSpec spec;
  spec.predicates = {{"nope", CompareOp::kEq, Value(1)}};
  EXPECT_EQ(TableScanner::Prepare(generated.table, spec).status().code(),
            StatusCode::kNotFound);
}

TEST(TableScannerTest, UnrepresentableValueFails) {
  ScanTableOptions options;
  options.rows = 100;
  options.selectivities = {0.5};
  const auto generated = MakeScanTable(options);
  ScanSpec spec;
  spec.predicates = {{"c0", CompareOp::kEq, Value(5.5)}};
  EXPECT_FALSE(TableScanner::Prepare(generated.table, spec).ok());
}

TEST(TableScannerTest, TooManyPredicatesFails) {
  ScanTableOptions options;
  options.rows = 100;
  options.selectivities = {0.5};
  const auto generated = MakeScanTable(options);
  ScanSpec spec;
  for (size_t i = 0; i < kMaxScanStages + 1; ++i) {
    spec.predicates.push_back({"c0", CompareOp::kEq, Value(1)});
  }
  EXPECT_FALSE(TableScanner::Prepare(generated.table, spec).ok());
}

TEST(TableScannerTest, EmptyPredicateListMatchesAllRows) {
  ScanTableOptions options;
  options.rows = 500;
  options.selectivities = {0.5};
  const auto generated = MakeScanTable(options);
  const auto matches = ExecuteScan(generated.table, ScanSpec{},
                                   ScanEngine::kAvx512Fused512);
  if (!matches.ok()) GTEST_SKIP() << matches.status().ToString();
  EXPECT_EQ(matches->TotalMatches(), 500u);
}

TEST(TableScannerTest, ImpossibleDictionaryPredicateShortCircuits) {
  // Equality with a value absent from the dictionary: the chunk plan is
  // marked impossible and the scan returns zero rows without running.
  TableBuilder builder({{"a", DataType::kInt32}});
  builder.SetDictionaryEncoded(0);
  for (const int v : {1, 2, 3}) {
    ASSERT_TRUE(builder.AppendRow({Value(v)}).ok());
  }
  const TablePtr table = builder.Build();
  ScanSpec spec;
  spec.predicates = {{"a", CompareOp::kEq, Value(42)}};
  const auto scanner = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(scanner.ok());
  EXPECT_TRUE(scanner->chunk_plans()[0].impossible);
  const auto matches = scanner->Execute(ScanEngine::kScalarFused);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->TotalMatches(), 0u);
}

TEST(TableScannerTest, TautologicalDictionaryPredicateIsDropped) {
  TableBuilder builder({{"a", DataType::kInt32}, {"b", DataType::kInt32}});
  builder.SetDictionaryEncoded(0);
  for (const int v : {1, 2, 3, 4}) {
    ASSERT_TRUE(builder.AppendRow({Value(v), Value(v % 2)}).ok());
  }
  const TablePtr table = builder.Build();
  ScanSpec spec;
  spec.predicates = {{"a", CompareOp::kGe, Value(0)},  // Always true.
                     {"b", CompareOp::kEq, Value(1)}};
  const auto scanner = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(scanner.ok());
  EXPECT_EQ(scanner->chunk_plans()[0].stages.size(), 1u);
  const auto matches = scanner->Execute(ScanEngine::kScalarFused);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->TotalMatches(), 2u);
}

TEST(TableScannerTest, JitEngineRedirects) {
  ScanTableOptions options;
  options.rows = 10;
  options.selectivities = {0.5};
  const auto generated = MakeScanTable(options);
  ScanSpec spec;
  spec.predicates = {{"c0", CompareOp::kEq, Value(5)}};
  const auto scanner = TableScanner::Prepare(generated.table, spec);
  ASSERT_TRUE(scanner.ok());
  EXPECT_FALSE(scanner->Execute(ScanEngine::kJit).ok());
}

}  // namespace
}  // namespace fts
