// Query lifecycle hardening tests: QueryContext deadline/cancel/budget
// semantics, the admission controller's bounded run queue, the compiler
// driver's kill-and-reap path for in-flight compiles, and end-to-end
// deadline / cancellation / memory-budget behavior through Database::Query.

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fts/common/fault_injection.h"
#include "fts/common/query_context.h"
#include "fts/db/database.h"
#include "fts/exec/admission.h"
#include "fts/jit/compiler_driver.h"
#include "fts/storage/data_generator.h"

namespace fts {
namespace {

// --- QueryContext ----------------------------------------------------------

TEST(QueryContextTest, IdsAreUniqueAndIncreasing) {
  const auto a = QueryContext::Create();
  const auto b = QueryContext::Create();
  EXPECT_LT(a->id(), b->id());
}

TEST(QueryContextTest, UncancelledChecksPass) {
  QueryContext ctx;
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_TRUE(ctx.CheckCancelled().ok());
  EXPECT_TRUE(ctx.CancelStatus().ok());
  EXPECT_EQ(ctx.checks(), 1u);
}

TEST(QueryContextTest, CancelFlipsOnceFirstWins) {
  QueryContext ctx;
  ctx.Cancel(StatusCode::kQueryCanceled);
  EXPECT_TRUE(ctx.cancelled());
  // A later deadline firing must not overwrite the explicit cancel.
  ctx.Cancel(StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.CheckCancelled().code(), StatusCode::kQueryCanceled);
  EXPECT_EQ(ctx.CancelStatus().code(), StatusCode::kQueryCanceled);
}

TEST(QueryContextTest, ExpiredDeadlineCaughtLazily) {
  QueryContext ctx;
  ctx.SetDeadlineMillis(1);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_EQ(ctx.deadline_millis(), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // No timer wheel involved: the boundary check itself reads the clock.
  const Status status = ctx.CheckCancelled();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("deadline"), std::string::npos);
}

TEST(QueryContextTest, RemainingMillisInfiniteWithoutDeadline) {
  QueryContext ctx;
  EXPECT_TRUE(std::isinf(ctx.RemainingMillis()));
  ctx.SetDeadlineMillis(10000);
  EXPECT_GT(ctx.RemainingMillis(), 0.0);
  EXPECT_LE(ctx.RemainingMillis(), 10000.0);
}

TEST(QueryContextTest, CancelAtCheckFiresOnNthBoundary) {
  QueryContext ctx;
  ctx.CancelAtCheck(3);
  EXPECT_TRUE(ctx.CheckCancelled().ok());
  EXPECT_TRUE(ctx.CheckCancelled().ok());
  EXPECT_EQ(ctx.CheckCancelled().code(), StatusCode::kQueryCanceled);
  EXPECT_TRUE(ctx.cancelled());
}

TEST(QueryContextTest, MemoryBudgetReserveRelease) {
  QueryContext ctx;
  ctx.SetMemoryBudget(100);
  EXPECT_TRUE(ctx.ReserveMemory(60).ok());
  EXPECT_EQ(ctx.memory_reserved(), 60u);
  const Status over = ctx.ReserveMemory(50);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.memory_reserved(), 60u);  // Failed reserve rolled back.
  ctx.ReleaseMemory(60);
  EXPECT_EQ(ctx.memory_reserved(), 0u);
  EXPECT_TRUE(ctx.ReserveMemory(100).ok());
  EXPECT_EQ(ctx.memory_peak(), 100u);
  ctx.ReleaseMemory(100);
}

TEST(QueryContextTest, ScopedReservationReleasesOnDestruction) {
  QueryContext ctx;
  ctx.SetMemoryBudget(100);
  {
    ScopedMemoryReservation reservation;
    EXPECT_TRUE(reservation.Reserve(&ctx, 80).ok());
    EXPECT_EQ(ctx.memory_reserved(), 80u);
  }
  EXPECT_EQ(ctx.memory_reserved(), 0u);
}

TEST(QueryContextTest, AllocFaultPointFails) {
  QueryContext ctx;  // No budget at all: the fault alone must fire.
  ScopedFault fault(kFaultAlloc);
  const Status status = ctx.ReserveMemory(16);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("fault injection"), std::string::npos);
}

// --- Admission controller --------------------------------------------------

AdmissionOptions SmallAdmission(int max_concurrent, int queue_depth) {
  AdmissionOptions options;
  options.max_concurrent = max_concurrent;
  options.queue_depth = queue_depth;
  return options;
}

TEST(AdmissionTest, ImmediateAdmitBelowLimit) {
  AdmissionController controller(SmallAdmission(2, 2));
  auto a = controller.Admit(nullptr);
  auto b = controller.Admit(nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->queue_wait_micros(), 0);
  EXPECT_EQ(controller.stats().running, 2);
  b->Release();
  a->Release();
  EXPECT_EQ(controller.stats().running, 0);
}

TEST(AdmissionTest, QueuedQueryAdmittedOnRelease) {
  AdmissionController controller(SmallAdmission(1, 1));
  auto first = controller.Admit(nullptr);
  ASSERT_TRUE(first.ok());

  QueryContext ctx;
  StatusOr<AdmissionController::Ticket> second =
      Status::Internal("not yet run");
  std::thread waiter([&] { second = controller.Admit(&ctx); });
  while (controller.stats().waiting == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  first->Release();
  waiter.join();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(second->queue_wait_micros(), 0);
  EXPECT_GT(ctx.queue_wait_micros(), 0);
  EXPECT_EQ(controller.stats().queued, 1u);
}

TEST(AdmissionTest, QueueFullRejectsTyped) {
  AdmissionController controller(SmallAdmission(1, 1));
  auto running = controller.Admit(nullptr);
  ASSERT_TRUE(running.ok());

  QueryContext queued_ctx;
  StatusOr<AdmissionController::Ticket> queued =
      Status::Internal("not yet run");
  std::thread waiter([&] { queued = controller.Admit(&queued_ctx); });
  while (controller.stats().waiting == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Queue depth 1 is taken: the next arrival is rejected immediately.
  QueryContext rejected_ctx;
  const auto rejected = controller.Admit(&rejected_ctx);
  EXPECT_EQ(rejected.status().code(), StatusCode::kAdmissionRejected);
  EXPECT_NE(rejected.status().message().find("admission queue full"),
            std::string::npos);
  EXPECT_EQ(controller.stats().rejected, 1u);

  running->Release();
  waiter.join();
  ASSERT_TRUE(queued.ok());
}

TEST(AdmissionTest, CanceledWaiterLeavesQueue) {
  AdmissionController controller(SmallAdmission(1, 4));
  auto running = controller.Admit(nullptr);
  ASSERT_TRUE(running.ok());

  QueryContext ctx;
  StatusOr<AdmissionController::Ticket> queued =
      Status::Internal("not yet run");
  std::thread waiter([&] { queued = controller.Admit(&ctx); });
  while (controller.stats().waiting == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ctx.Cancel(StatusCode::kQueryCanceled);
  waiter.join();
  EXPECT_EQ(queued.status().code(), StatusCode::kQueryCanceled);
  EXPECT_EQ(controller.stats().waiting, 0);
  // The slot is still usable afterwards.
  running->Release();
  auto next = controller.Admit(nullptr);
  EXPECT_TRUE(next.ok());
}

TEST(AdmissionTest, ExpiredDeadlineWaiterLeavesQueueAsDeadline) {
  AdmissionController controller(SmallAdmission(1, 4));
  auto running = controller.Admit(nullptr);
  ASSERT_TRUE(running.ok());

  QueryContext ctx;
  ctx.SetDeadlineMillis(5);  // Expires while queued; lazy check catches it.
  const auto queued = controller.Admit(&ctx);
  EXPECT_EQ(queued.status().code(), StatusCode::kDeadlineExceeded);
}

// --- Compiler kill & reap --------------------------------------------------

class CompileKillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    work_dir_ = ::testing::TempDir() + "fts_compile_kill";
    ::mkdir(work_dir_.c_str(), 0755);
    // A fake "compiler" that hangs: the only way Compile() finishes
    // quickly is by killing it.
    script_ = work_dir_ + "/slow_cxx.sh";
    std::ofstream out(script_);
    out << "#!/bin/sh\nsleep 600\n";
    out.close();
    ::chmod(script_.c_str(), 0755);
  }

  // fts-jit-* scratch dirs left in work_dir_ (must be none after a kill).
  std::vector<std::string> ScratchDirs() const {
    std::vector<std::string> dirs;
    DIR* dir = ::opendir(work_dir_.c_str());
    if (dir == nullptr) return dirs;
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name.rfind("fts-jit-", 0) == 0) dirs.push_back(name);
    }
    ::closedir(dir);
    return dirs;
  }

  JitCompilerOptions Options() const {
    JitCompilerOptions options;
    options.compiler = script_;
    options.work_dir = work_dir_;
    options.compile_timeout_millis = 60000;  // Cancel must win, not this.
    return options;
  }

  std::string work_dir_;
  std::string script_;
};

TEST_F(CompileKillTest, CancelKillsAndReapsInFlightCompile) {
  if (::getenv("FTS_JIT_CXX") != nullptr) {
    GTEST_SKIP() << "FTS_JIT_CXX overrides the compiler under test";
  }
  JitCompiler compiler(Options());
  QueryContext ctx;
  // Check 1 passes (pre-spawn); the first waitpid poll cancels, so the
  // hung child is SIGKILLed within one poll interval — deterministically,
  // no timer race.
  ctx.CancelAtCheck(2);

  const auto started = std::chrono::steady_clock::now();
  const auto result = compiler.Compile("int x;", "unused_symbol", &ctx);
  const auto elapsed = std::chrono::steady_clock::now() - started;

  EXPECT_EQ(result.status().code(), StatusCode::kQueryCanceled);
  EXPECT_LT(elapsed, std::chrono::seconds(30));  // Not the sleep 600.

  // waitpid bookkeeping: the child was killed AND reaped — no zombie.
  const JitCompiler::ChildStats child = compiler.last_child();
  ASSERT_GT(child.pid, 0);
  EXPECT_TRUE(child.killed);
  EXPECT_TRUE(child.reaped);
  errno = 0;
  EXPECT_EQ(::kill(child.pid, 0), -1);
  EXPECT_EQ(errno, ESRCH) << "compiler process " << child.pid
                          << " still exists (zombie or unreaped)";

  // And no orphaned scratch artifacts.
  EXPECT_TRUE(ScratchDirs().empty());
}

TEST_F(CompileKillTest, PreCancelledContextNeverSpawns) {
  if (::getenv("FTS_JIT_CXX") != nullptr) {
    GTEST_SKIP() << "FTS_JIT_CXX overrides the compiler under test";
  }
  JitCompiler compiler(Options());
  QueryContext ctx;
  ctx.Cancel(StatusCode::kQueryCanceled);
  const auto result = compiler.Compile("int x;", "unused_symbol", &ctx);
  EXPECT_EQ(result.status().code(), StatusCode::kQueryCanceled);
  EXPECT_EQ(compiler.last_child().pid, -1);  // No process was spawned.
  EXPECT_TRUE(ScratchDirs().empty());
}

// --- Database end-to-end ---------------------------------------------------

class QueryLifecycleDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScanTableOptions options;
    options.rows = 200000;
    options.chunk_size = 65536;  // 4 chunks: several morsel boundaries.
    options.selectivities = {0.2, 0.5};
    options.seed = 17;
    generated_ = MakeScanTable(options);
    ASSERT_TRUE(db_.RegisterTable("tbl", generated_.table).ok());
  }

  Database db_;
  GeneratedScanTable generated_;
  const std::string sql_ = "SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2";
};

TEST_F(QueryLifecycleDbTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  // Arm the deadline on an external context and let it expire before the
  // query starts — deterministic, no dependence on scan duration.
  Database::QueryOptions options;
  options.context = QueryContext::Create();
  options.context->SetDeadlineMillis(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto result = db_.Query(sql_, options);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("deadline"), std::string::npos);
}

TEST_F(QueryLifecycleDbTest, PreCancelledContextReturnsCanceled) {
  Database::QueryOptions options;
  options.context = QueryContext::Create();
  options.context->Cancel(StatusCode::kQueryCanceled);
  const auto result = db_.Query(sql_, options);
  EXPECT_EQ(result.status().code(), StatusCode::kQueryCanceled);
}

TEST_F(QueryLifecycleDbTest, CancelAtBoundaryMidScan) {
  Database::QueryOptions options;
  options.context = QueryContext::Create();
  options.context->CancelAtCheck(5);
  const auto result = db_.Query(sql_, options);
  EXPECT_EQ(result.status().code(), StatusCode::kQueryCanceled);
  // The engine stays fully usable for the next query.
  const auto retry = db_.Query(sql_);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(*retry->count, generated_.stage_matches.back());
}

TEST_F(QueryLifecycleDbTest, TinyMemoryBudgetFailsTyped) {
  Database::QueryOptions options;
  options.memory_budget_bytes = 64;  // Far below one chunk's pos list.
  const auto result =
      db_.Query("SELECT c0 FROM tbl WHERE c0 = 5 AND c1 = 2", options);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("memory budget"),
            std::string::npos);
  // Generous budget: same query succeeds and reports peak usage.
  Database::QueryOptions roomy;
  roomy.memory_budget_bytes = 1ull << 30;
  roomy.context = QueryContext::Create();
  const auto ok = db_.Query("SELECT c0 FROM tbl WHERE c0 = 5 AND c1 = 2",
                            roomy);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_GT(roomy.context->memory_peak(), 0u);
  EXPECT_EQ(roomy.context->memory_reserved(), 0u);  // All released.
}

TEST_F(QueryLifecycleDbTest, AllocFaultFailsScanTyped) {
  ScopedFault fault(kFaultAlloc);
  Database::QueryOptions options;
  options.context = QueryContext::Create();  // Context without a budget.
  const auto result =
      db_.Query("SELECT c0 FROM tbl WHERE c0 = 5 AND c1 = 2", options);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(QueryLifecycleDbTest, DeadlineSurfacesInExplainAnalyze) {
  Database::QueryOptions options;
  options.deadline_millis = 60000;  // Generous: the query completes.
  const auto result = db_.Query("EXPLAIN ANALYZE " + sql_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->explain_text.find("Deadline: 60000 ms"),
            std::string::npos)
      << result->explain_text;
  EXPECT_NE(result->explain_text.find("QueueWait:"), std::string::npos);
}

TEST_F(QueryLifecycleDbTest, NoDeadlineStillRendersMarkers) {
  const auto result = db_.Query("EXPLAIN ANALYZE " + sql_);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->explain_text.find("Deadline: none"), std::string::npos);
  EXPECT_NE(result->explain_text.find("QueueWait:"), std::string::npos);
}

TEST_F(QueryLifecycleDbTest, ParallelScanHonorsDeadlineQuickly) {
  // 4-thread scan with an already-expired deadline must abort at the
  // first morsel boundaries and return promptly.
  Database::QueryOptions options;
  options.threads = 4;
  options.context = QueryContext::Create();
  options.context->SetDeadlineMillis(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto started = std::chrono::steady_clock::now();
  const auto result = db_.Query(sql_, options);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

}  // namespace
}  // namespace fts
