#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fts/storage/csv_loader.h"

namespace fts {
namespace {

TEST(CsvLoaderTest, TypedHeaderInference) {
  const auto table = LoadCsvFromString(
      "id:int64,price:float64,qty:int\n"
      "1,9.5,3\n"
      "2,1.25,7\n",
      CsvOptions{});
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->row_count(), 2u);
  EXPECT_EQ((*table)->schema()[0].type, DataType::kInt64);
  EXPECT_EQ((*table)->schema()[1].type, DataType::kFloat64);
  EXPECT_EQ((*table)->schema()[2].type, DataType::kInt32);
  EXPECT_EQ(ValueAs<int64_t>((*table)->GetValue(0, {0, 1})), 2);
  EXPECT_DOUBLE_EQ(ValueAs<double>((*table)->GetValue(1, {0, 0})), 9.5);
}

TEST(CsvLoaderTest, ExplicitSchemaSkipsHeader) {
  CsvOptions options;
  options.schema = {{"a", DataType::kInt32}, {"b", DataType::kInt32}};
  const auto table = LoadCsvFromString("a,b\n1,2\n3,4\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->row_count(), 2u);

  options.expect_header = false;
  const auto headerless = LoadCsvFromString("1,2\n3,4\n", options);
  ASSERT_TRUE(headerless.ok());
  EXPECT_EQ((*headerless)->row_count(), 2u);
}

TEST(CsvLoaderTest, BlankLinesAndWhitespace) {
  const auto table = LoadCsvFromString(
      "a:int32\n"
      "  1  \n"
      "\n"
      " 2\n",
      CsvOptions{});
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->row_count(), 2u);
}

TEST(CsvLoaderTest, ErrorsCarryLineContext) {
  const auto arity = LoadCsvFromString("a:int32,b:int32\n1\n", CsvOptions{});
  ASSERT_FALSE(arity.ok());
  EXPECT_NE(arity.status().message().find("line 2"), std::string::npos);

  const auto parse =
      LoadCsvFromString("a:int32\nnot_a_number\n", CsvOptions{});
  ASSERT_FALSE(parse.ok());
  EXPECT_NE(parse.status().message().find("'a'"), std::string::npos);

  const auto overflow =
      LoadCsvFromString("a:int8\n400\n", CsvOptions{});
  ASSERT_FALSE(overflow.ok());
}

TEST(CsvLoaderTest, HeaderValidation) {
  EXPECT_FALSE(LoadCsvFromString("", CsvOptions{}).ok());
  EXPECT_FALSE(LoadCsvFromString("a\n1\n", CsvOptions{}).ok());
  EXPECT_FALSE(
      LoadCsvFromString("a:varchar\nx\n", CsvOptions{}).ok());
}

TEST(CsvLoaderTest, EncodedColumns) {
  CsvOptions options;
  options.dictionary_columns = {"a"};
  options.bitpacked_columns = {"b"};
  const auto table = LoadCsvFromString(
      "a:int32,b:int32,c:int32\n"
      "7,1,10\n"
      "7,0,20\n"
      "3,1,30\n",
      options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->chunk(0).column(0).encoding(),
            ColumnEncoding::kDictionary);
  EXPECT_EQ((*table)->chunk(0).column(1).encoding(),
            ColumnEncoding::kBitPacked);
  EXPECT_EQ((*table)->chunk(0).column(2).encoding(), ColumnEncoding::kPlain);
  EXPECT_EQ(ValueAs<int>((*table)->GetValue(1, {0, 2})), 1);

  options.dictionary_columns = {"zzz"};
  EXPECT_FALSE(LoadCsvFromString("a:int32\n1\n", options).ok());
}

TEST(CsvLoaderTest, FileRoundTrip) {
  const std::string path = "/tmp/fts_csv_loader_test.csv";
  {
    std::ofstream out(path);
    out << "x:int32,y:float32\n-5,0.5\n10,1.5\n";
  }
  const auto table = LoadCsvFile(path, CsvOptions{});
  std::remove(path.c_str());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->row_count(), 2u);
  EXPECT_EQ(ValueAs<int>((*table)->GetValue(0, {0, 0})), -5);
  EXPECT_FLOAT_EQ(ValueAs<float>((*table)->GetValue(1, {0, 1})), 1.5f);
}

TEST(CsvLoaderTest, MissingFile) {
  EXPECT_EQ(LoadCsvFile("/nonexistent/file.csv", CsvOptions{})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(CsvLoaderTest, ChunkingRespected) {
  CsvOptions options;
  options.chunk_size = 2;
  const auto table =
      LoadCsvFromString("a:int32\n1\n2\n3\n4\n5\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->chunk_count(), 3u);
  EXPECT_EQ((*table)->row_count(), 5u);
}

}  // namespace
}  // namespace fts
