// Calibrated cost model (fts/cost, DESIGN.md §14): profile round-trip and
// version invalidation, selectivity estimation, chain-cost monotonicity,
// and the per-chunk behaviors the model drives inside TableScanner —
// re-ranking on adversarial skew and engine adaptation that never changes
// results.

#include <gtest/gtest.h>

#include <cstdlib>

#include "fts/common/cpu_info.h"
#include "fts/cost/cost_model.h"
#include "fts/cost/cost_profile.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/table_builder.h"

namespace fts {
namespace {

using cost::CostProfile;

// Calibration is process-lifetime (CalibratedProfile() measures once);
// force the fast mode before any test can trigger it so the suite stays
// quick under TSan too.
const bool kFastCalibration = [] {
  setenv("FTS_CALIBRATE_FAST", "1", 1);
  return true;
}();

// Toggles FTS_ADAPTIVE for the duration of a scope. Prepare() reads the
// switch once, so a scanner prepared inside the scope keeps its behavior
// after restore.
class ScopedAdaptive {
 public:
  explicit ScopedAdaptive(bool on) {
    setenv("FTS_ADAPTIVE", on ? "1" : "0", 1);
  }
  ~ScopedAdaptive() { unsetenv("FTS_ADAPTIVE"); }
};

TEST(CostProfileTest, SerializeParseRoundTrip) {
  CostProfile profile = CostProfile::Defaults();
  profile.calibrated = true;
  profile.rle_run_ns = 7.25;
  profile.delta_block_ns = 19.5;
  profile.delta_row_ns = 2.125;
  profile.jit_speed_factor = 0.75;
  profile.jit_compile_millis = 42.5;

  const auto parsed = CostProfile::Parse(profile.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->version, CostProfile::kVersion);
  EXPECT_EQ(parsed->cpu, profile.cpu);
  EXPECT_TRUE(parsed->calibrated);
  EXPECT_DOUBLE_EQ(parsed->rle_run_ns, profile.rle_run_ns);
  EXPECT_DOUBLE_EQ(parsed->delta_block_ns, profile.delta_block_ns);
  EXPECT_DOUBLE_EQ(parsed->delta_row_ns, profile.delta_row_ns);
  EXPECT_DOUBLE_EQ(parsed->jit_speed_factor, profile.jit_speed_factor);
  EXPECT_DOUBLE_EQ(parsed->jit_compile_millis, profile.jit_compile_millis);
  for (size_t i = 0; i < cost::kNumEngines; ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(parsed->engines[i].available, profile.engines[i].available);
    if (!profile.engines[i].available) continue;
    for (size_t e = 0; e < cost::kNumEncClasses; ++e) {
      EXPECT_DOUBLE_EQ(parsed->engines[i].first_ns[e],
                       profile.engines[i].first_ns[e]);
      EXPECT_DOUBLE_EQ(parsed->engines[i].rest_ns[e],
                       profile.engines[i].rest_ns[e]);
    }
    EXPECT_DOUBLE_EQ(parsed->engines[i].emit_ns, profile.engines[i].emit_ns);
  }
}

TEST(CostProfileTest, ParseRejectsVersionMismatch) {
  std::string text = CostProfile::Defaults().Serialize();
  const std::string header = "fts-cost-profile v1";
  ASSERT_EQ(text.compare(0, header.size(), header), 0);
  text.replace(0, header.size(), "fts-cost-profile v2");
  EXPECT_FALSE(CostProfile::Parse(text).ok());
}

TEST(CostProfileTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(CostProfile::Parse("").ok());
  EXPECT_FALSE(CostProfile::Parse("not a profile\n").ok());
  EXPECT_FALSE(
      CostProfile::Parse("fts-cost-profile v1\nbogus_key 3\n").ok());
  EXPECT_FALSE(
      CostProfile::Parse("fts-cost-profile v1\nengine warp-drive first\n")
          .ok());
  EXPECT_FALSE(CostProfile::Parse(
                   "fts-cost-profile v1\nengine scalar-fused first 1 2\n")
                   .ok());
}

TEST(CostProfileTest, FastCalibrationMeasuresThisMachine) {
  // Direct Calibrate() (not the cached CalibratedProfile()) so the test
  // owns its run; FTS_CALIBRATE_FAST was pinned above.
  const CostProfile profile = CostProfile::Calibrate();
  EXPECT_TRUE(profile.calibrated);
  EXPECT_EQ(profile.cpu, GetCpuFeatures().ToString());
  // The portable engines are always measurable; their constants must come
  // out positive in every encoding class.
  for (const ScanEngine engine :
       {ScanEngine::kSisdNoVec, ScanEngine::kSisdAutoVec,
        ScanEngine::kScalarFused}) {
    const cost::EngineCostConstants& e = profile.For(engine);
    ASSERT_TRUE(e.available) << ScanEngineToString(engine);
    for (size_t c = 0; c < cost::kNumEncClasses; ++c) {
      EXPECT_GT(e.first_ns[c], 0.0) << ScanEngineToString(engine);
      EXPECT_GT(e.rest_ns[c], 0.0) << ScanEngineToString(engine);
    }
  }
  // JIT constants derive from the best measured fused engine.
  EXPECT_TRUE(profile.For(ScanEngine::kJit).available);
  EXPECT_FALSE(profile.For(ScanEngine::kBlockwise).available);
  EXPECT_GT(profile.rle_run_ns, 0.0);
  EXPECT_GT(profile.delta_block_ns, 0.0);
  EXPECT_GT(profile.delta_row_ns, 0.0);
  // And the measurement round-trips through the on-disk format.
  const auto parsed = CostProfile::Parse(profile.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->calibrated);
  EXPECT_EQ(parsed->cpu, profile.cpu);
}

TEST(CostModelTest, UniformSelectivityEndpoints) {
  using cost::EstimateUniformSelectivity;
  // Integral [0, 9]: ten distinct values.
  EXPECT_DOUBLE_EQ(
      EstimateUniformSelectivity<int32_t>(0, 9, CompareOp::kEq, 4), 0.1);
  EXPECT_DOUBLE_EQ(
      EstimateUniformSelectivity<int32_t>(0, 9, CompareOp::kLt, 5), 0.5);
  EXPECT_DOUBLE_EQ(
      EstimateUniformSelectivity<int32_t>(0, 9, CompareOp::kLe, 9), 1.0);
  EXPECT_DOUBLE_EQ(
      EstimateUniformSelectivity<int32_t>(0, 9, CompareOp::kGt, 9), 0.0);
  EXPECT_DOUBLE_EQ(
      EstimateUniformSelectivity<int32_t>(0, 9, CompareOp::kGe, 0), 1.0);
  // Out-of-range literals decide the predicate outright.
  EXPECT_DOUBLE_EQ(
      EstimateUniformSelectivity<int32_t>(0, 9, CompareOp::kEq, 100), 0.0);
  EXPECT_DOUBLE_EQ(
      EstimateUniformSelectivity<int32_t>(0, 9, CompareOp::kNe, 100), 1.0);
  // Degenerate bounds estimate nothing.
  EXPECT_DOUBLE_EQ(
      EstimateUniformSelectivity<int32_t>(5, 4, CompareOp::kLt, 5), 0.5);
  // Floating domains: kEq is a nominal sliver, ranges are proportional.
  EXPECT_DOUBLE_EQ(
      EstimateUniformSelectivity<double>(0.0, 10.0, CompareOp::kEq, 5.0),
      0.001);
  EXPECT_DOUBLE_EQ(
      EstimateUniformSelectivity<double>(0.0, 10.0, CompareOp::kLt, 2.5),
      0.25);
  EXPECT_DOUBLE_EQ(
      EstimateUniformSelectivity<double>(0.0, 10.0, CompareOp::kGe, 12.0),
      0.0);
}

TEST(CostModelTest, ChainCostMonotonicInSelectivityAndRows) {
  const CostProfile& profile = cost::DefaultProfile();
  const auto chain = [](double first_sel) {
    return std::vector<cost::StageCost>{
        {cost::EncClass::kPlain32, first_sel},
        {cost::EncClass::kPlain32, 0.5}};
  };
  double previous = -1.0;
  for (const double sel : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    const double cost_ns =
        cost::ChainCostNs(profile, ScanEngine::kScalarFused, chain(sel),
                          1e6, cost::ScanMode::kMaterialize);
    EXPECT_GT(cost_ns, previous) << "sel=" << sel;
    previous = cost_ns;
  }
  const double small =
      cost::ChainCostNs(profile, ScanEngine::kScalarFused, chain(0.5), 1e5,
                        cost::ScanMode::kMaterialize);
  const double large =
      cost::ChainCostNs(profile, ScanEngine::kScalarFused, chain(0.5), 1e6,
                        cost::ScanMode::kMaterialize);
  EXPECT_GT(large, small);
  EXPECT_NEAR(large / small, 10.0, 0.01);
}

TEST(CostModelTest, CountModeCreditsOnlySisdEngines) {
  const CostProfile& profile = cost::DefaultProfile();
  const std::vector<cost::StageCost> chain{{cost::EncClass::kPlain32, 0.9}};
  // The SISD count loop materializes nothing: kCount must be strictly
  // cheaper than kMaterialize. Fused engines materialize positions either
  // way, so their two modes price identically.
  EXPECT_LT(cost::ChainCostNs(profile, ScanEngine::kSisdNoVec, chain, 1e6,
                              cost::ScanMode::kCount),
            cost::ChainCostNs(profile, ScanEngine::kSisdNoVec, chain, 1e6,
                              cost::ScanMode::kMaterialize));
  EXPECT_DOUBLE_EQ(
      cost::ChainCostNs(profile, ScanEngine::kScalarFused, chain, 1e6,
                        cost::ScanMode::kCount),
      cost::ChainCostNs(profile, ScanEngine::kScalarFused, chain, 1e6,
                        cost::ScanMode::kMaterialize));
}

TEST(CostModelTest, StageRankPrefersSelectiveStages) {
  const CostProfile& profile = cost::DefaultProfile();
  // Same per-row cost: the stage that filters more ranks first.
  EXPECT_LT(cost::StageRank(profile, ScanEngine::kScalarFused,
                            cost::EncClass::kPlain32, 0.01),
            cost::StageRank(profile, ScanEngine::kScalarFused,
                            cost::EncClass::kPlain32, 0.9));
  // A stage that filters nothing ranks (effectively) last regardless of
  // how cheap it is.
  EXPECT_GT(cost::StageRank(profile, ScanEngine::kScalarFused,
                            cost::EncClass::kPlain32, 1.0),
            cost::StageRank(profile, ScanEngine::kScalarFused,
                            cost::EncClass::kPacked, 0.99));
}

// Two chunk types with opposite value distributions under one conjunction:
// the per-chunk ranking must order each chunk's chain differently, and the
// reordering must not change a single output position.
class AdversarialSkewTest : public ::testing::Test {
 protected:
  static TablePtr BuildSkewTable() {
    constexpr size_t kRowsPerChunk = 1024;
    TableBuilder builder(
        {{"c0", DataType::kInt32}, {"c1", DataType::kInt32}},
        kRowsPerChunk);
    // Chunk 0: c0 wide [0, 1000], c1 narrow [0, 10] -> under
    // `c0 < 5 AND c1 < 5` the c0 stage is far more selective (~0.005 vs
    // ~0.45) and must stay first. Chunk 1 swaps the columns, so the same
    // conjunction must flip its order there.
    for (size_t r = 0; r < kRowsPerChunk; ++r) {
      FTS_CHECK(builder
                    .AppendRow({Value(static_cast<int32_t>(r % 1001)),
                                Value(static_cast<int32_t>(r % 11))})
                    .ok());
    }
    for (size_t r = 0; r < kRowsPerChunk; ++r) {
      FTS_CHECK(builder
                    .AppendRow({Value(static_cast<int32_t>(r % 11)),
                                Value(static_cast<int32_t>(r % 1001))})
                    .ok());
    }
    return builder.Build();
  }

  static ScanSpec SkewSpec() {
    ScanSpec spec;
    spec.predicates = {{"c0", CompareOp::kLt, Value(int32_t{5})},
                       {"c1", CompareOp::kLt, Value(int32_t{5})}};
    return spec;
  }
};

TEST_F(AdversarialSkewTest, PerChunkReorderFollowsZoneSelectivity) {
  const TablePtr table = BuildSkewTable();
  const ScanSpec spec = SkewSpec();

  ScopedAdaptive adaptive(true);
  const auto prepared = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->model_active());
  ASSERT_EQ(prepared->chunk_plans().size(), 2u);

  // Chunk 0 keeps the spec order (c0 already most selective); chunk 1
  // flips to run its selective c1 stage first.
  const TableScanner::ChunkPlan& keep = prepared->chunk_plans()[0];
  const TableScanner::ChunkPlan& flip = prepared->chunk_plans()[1];
  EXPECT_FALSE(keep.reordered);
  EXPECT_TRUE(flip.reordered);
  EXPECT_EQ(prepared->chunks_reordered(), 1u);
  // In both chunks the executed-first stage is the selective one.
  ASSERT_EQ(keep.stages.size(), 2u);
  ASSERT_EQ(flip.stages.size(), 2u);
  EXPECT_LT(keep.stage_sel[0], keep.stage_sel[1]);
  EXPECT_LT(flip.stage_sel[0], flip.stage_sel[1]);
  // The estimate sees the skew: ~5/1001 * ~5/11 of each chunk.
  EXPECT_GT(prepared->est_rows(), 0.0);
  EXPECT_LT(prepared->est_rows(), 100.0);

  // Predicted cost is positive and finite for every available engine.
  for (const ScanEngine engine :
       {ScanEngine::kSisdNoVec, ScanEngine::kScalarFused}) {
    const double ns =
        prepared->EstimateScanNanos(engine, cost::ScanMode::kMaterialize);
    EXPECT_GT(ns, 0.0) << ScanEngineToString(engine);
  }
}

TEST_F(AdversarialSkewTest, ReorderedChainIsByteIdenticalToStatic) {
  const TablePtr table = BuildSkewTable();
  const ScanSpec spec = SkewSpec();

  StatusOr<TableScanner> off = Status::Internal("unset");
  StatusOr<TableScanner> on = Status::Internal("unset");
  {
    ScopedAdaptive adaptive(false);
    off = TableScanner::Prepare(table, spec);
  }
  {
    ScopedAdaptive adaptive(true);
    on = TableScanner::Prepare(table, spec);
  }
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(on.ok());
  EXPECT_FALSE(off->model_active());
  EXPECT_EQ(off->chunks_reordered(), 0u);

  for (const ScanEngine engine :
       {ScanEngine::kSisdNoVec, ScanEngine::kSisdAutoVec,
        ScanEngine::kScalarFused, ScanEngine::kAvx2Fused128,
        ScanEngine::kAvx512Fused512}) {
    if (!ScanEngineAvailable(engine)) continue;
    const auto static_matches = off->Execute(engine);
    const auto ranked_matches = on->Execute(engine);
    ASSERT_TRUE(static_matches.ok()) << ScanEngineToString(engine);
    ASSERT_TRUE(ranked_matches.ok()) << ScanEngineToString(engine);
    ASSERT_EQ(static_matches->chunks.size(), ranked_matches->chunks.size());
    for (size_t i = 0; i < static_matches->chunks.size(); ++i) {
      EXPECT_EQ(static_matches->chunks[i].positions,
                ranked_matches->chunks[i].positions)
          << ScanEngineToString(engine) << " chunk " << i;
    }
    const auto static_count = off->ExecuteCount(engine);
    const auto ranked_count = on->ExecuteCount(engine);
    ASSERT_TRUE(static_count.ok() && ranked_count.ok());
    EXPECT_EQ(*static_count, *ranked_count) << ScanEngineToString(engine);
  }
}

TEST_F(AdversarialSkewTest, AdaptiveEngineNeverChangesResults) {
  const TablePtr table = BuildSkewTable();

  ScanSpec pinned = SkewSpec();
  ScanSpec adaptive_spec = SkewSpec();
  adaptive_spec.adaptive = true;

  ScopedAdaptive adaptive(true);
  const auto pinned_scan = TableScanner::Prepare(table, pinned);
  const auto adaptive_scan = TableScanner::Prepare(table, adaptive_spec);
  ASSERT_TRUE(pinned_scan.ok());
  ASSERT_TRUE(adaptive_scan.ok());
  // An explicit engine request pins every chunk; only spec.adaptive frees
  // the model to switch.
  EXPECT_FALSE(pinned_scan->adaptive());
  EXPECT_TRUE(adaptive_scan->adaptive());

  const ScanEngine requested = ScanEngineAvailable(ScanEngine::kAvx512Fused512)
                                   ? ScanEngine::kAvx512Fused512
                                   : ScanEngine::kScalarFused;
  // A pinned scanner's AdaptEngine is the identity.
  for (ChunkId chunk = 0; chunk < table->chunk_count(); ++chunk) {
    EXPECT_EQ(pinned_scan->AdaptEngine({requested, 0}, chunk,
                                       cost::ScanMode::kMaterialize)
                  .engine,
              requested);
  }
  // The adaptive scanner may switch, but never upward past the request
  // and never to an unavailable engine.
  for (ChunkId chunk = 0; chunk < table->chunk_count(); ++chunk) {
    const ScanEngine picked =
        adaptive_scan
            ->AdaptEngine({requested, 0}, chunk,
                          cost::ScanMode::kMaterialize)
            .engine;
    EXPECT_TRUE(ScanEngineAvailable(picked)) << ScanEngineToString(picked);
  }

  // Every AdaptEngine call (including the probes above) records its
  // decision; measure the execution's own contribution as a delta.
  uint64_t before = 0;
  for (const auto& counter : adaptive_scan->adaptive_stats()->chunk_engines) {
    before += counter.load();
  }

  const auto pinned_matches = pinned_scan->Execute(requested);
  const auto adaptive_matches = adaptive_scan->Execute(requested);
  ASSERT_TRUE(pinned_matches.ok());
  ASSERT_TRUE(adaptive_matches.ok());
  ASSERT_EQ(pinned_matches->chunks.size(), adaptive_matches->chunks.size());
  for (size_t i = 0; i < pinned_matches->chunks.size(); ++i) {
    EXPECT_EQ(pinned_matches->chunks[i].positions,
              adaptive_matches->chunks[i].positions)
        << "chunk " << i;
  }
  // The decisions were recorded: every runnable chunk shows up in the
  // engine mix exactly once per execution.
  uint64_t after = 0;
  for (const auto& counter : adaptive_scan->adaptive_stats()->chunk_engines) {
    after += counter.load();
  }
  EXPECT_EQ(after - before, table->chunk_count());
}

TEST_F(AdversarialSkewTest, KillSwitchDisablesModelEntirely) {
  const TablePtr table = BuildSkewTable();
  ScanSpec spec = SkewSpec();
  spec.adaptive = true;

  ScopedAdaptive adaptive(false);
  const auto prepared = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(prepared->model_active());
  EXPECT_FALSE(prepared->adaptive());
  EXPECT_EQ(prepared->chunks_reordered(), 0u);
  for (const TableScanner::ChunkPlan& plan : prepared->chunk_plans()) {
    EXPECT_FALSE(plan.reordered);
  }
  // With the model off AdaptEngine is the identity even for spec.adaptive.
  EXPECT_EQ(prepared
                ->AdaptEngine({ScanEngine::kScalarFused, 0}, 0,
                              cost::ScanMode::kMaterialize)
                .engine,
            ScanEngine::kScalarFused);
}

}  // namespace
}  // namespace fts
