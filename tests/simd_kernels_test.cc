#include <gtest/gtest.h>

#include <tuple>

#include "fts/common/aligned_buffer.h"
#include "fts/common/cpu_info.h"
#include "fts/common/random.h"
#include "fts/simd/dispatch.h"
#include "fts/simd/kernels_scalar.h"

namespace fts {
namespace {

// Typed test columns for kernel sweeps.
struct TestColumns {
  std::vector<AlignedVector<int32_t>> i32;
  std::vector<AlignedVector<uint32_t>> u32;
  std::vector<AlignedVector<float>> f32;
  std::vector<AlignedVector<int64_t>> i64;
  std::vector<AlignedVector<uint64_t>> u64;
  std::vector<AlignedVector<double>> f64;
};

// Builds a stage with small-cardinality random data so every comparator
// produces a healthy mix of selectivities.
ScanStage MakeStage(ScanElementType type, CompareOp op, size_t rows,
                    Xoshiro256& rng, TestColumns& columns) {
  ScanStage stage;
  stage.type = type;
  stage.op = op;
  const int64_t search = static_cast<int64_t>(rng.NextBounded(16)) - 4;
  switch (type) {
    case ScanElementType::kI32: {
      AlignedVector<int32_t> data(rows);
      for (auto& v : data) v = static_cast<int32_t>(rng.NextBounded(16)) - 4;
      columns.i32.push_back(std::move(data));
      stage.data = columns.i32.back().data();
      stage.value.i32 = static_cast<int32_t>(search);
      break;
    }
    case ScanElementType::kU32: {
      AlignedVector<uint32_t> data(rows);
      // Include values around the signed/unsigned boundary.
      for (auto& v : data) {
        v = static_cast<uint32_t>(rng.NextBounded(16)) +
            (rng.NextBool() ? 0x7FFFFFF8u : 0u);
      }
      columns.u32.push_back(std::move(data));
      stage.data = columns.u32.back().data();
      stage.value.u32 =
          static_cast<uint32_t>(rng.NextBounded(16)) +
          (rng.NextBool() ? 0x7FFFFFF8u : 0u);
      break;
    }
    case ScanElementType::kF32: {
      AlignedVector<float> data(rows);
      for (auto& v : data) {
        v = static_cast<float>(static_cast<int64_t>(rng.NextBounded(16)) - 4) /
            2.0f;
      }
      columns.f32.push_back(std::move(data));
      stage.data = columns.f32.back().data();
      stage.value.f32 = static_cast<float>(search) / 2.0f;
      break;
    }
    case ScanElementType::kI64: {
      AlignedVector<int64_t> data(rows);
      for (auto& v : data) {
        v = (static_cast<int64_t>(rng.NextBounded(16)) - 4) *
            (rng.NextBool() ? 1'000'000'000'000LL : 1LL);
      }
      columns.i64.push_back(std::move(data));
      stage.data = columns.i64.back().data();
      stage.value.i64 = search * (rng.NextBool() ? 1'000'000'000'000LL : 1LL);
      break;
    }
    case ScanElementType::kU64: {
      AlignedVector<uint64_t> data(rows);
      for (auto& v : data) {
        v = rng.NextBounded(16) + (rng.NextBool() ? (1ULL << 63) : 0ULL);
      }
      columns.u64.push_back(std::move(data));
      stage.data = columns.u64.back().data();
      stage.value.u64 =
          rng.NextBounded(16) + (rng.NextBool() ? (1ULL << 63) : 0ULL);
      break;
    }
    case ScanElementType::kF64: {
      AlignedVector<double> data(rows);
      for (auto& v : data) {
        v = static_cast<double>(static_cast<int64_t>(rng.NextBounded(16)) -
                                4) /
            2.0;
      }
      columns.f64.push_back(std::move(data));
      stage.data = columns.f64.back().data();
      stage.value.f64 = static_cast<double>(search) / 2.0;
      break;
    }
  }
  return stage;
}

void ExpectSameOutput(FusedScanFn kernel, const char* label,
                      const std::vector<ScanStage>& stages, size_t rows) {
  std::vector<uint32_t> expected(rows + kScanOutputSlack);
  std::vector<uint32_t> actual(rows + kScanOutputSlack);
  const size_t n_expected =
      FusedScanScalar(stages.data(), stages.size(), rows, expected.data());
  const size_t n_actual =
      kernel(stages.data(), stages.size(), rows, actual.data());
  ASSERT_EQ(n_actual, n_expected) << label << " rows=" << rows;
  for (size_t i = 0; i < n_expected; ++i) {
    ASSERT_EQ(actual[i], expected[i]) << label << " position " << i;
  }
}

// Parameter space: kernel kind x element type x comparator.
using KernelSweepParam =
    std::tuple<FusedKernelKind, ScanElementType, CompareOp>;

class KernelSweepTest : public ::testing::TestWithParam<KernelSweepParam> {
 protected:
  void SetUp() override {
    const FusedKernelKind kind = std::get<0>(GetParam());
    auto kernel = GetFusedScanKernel(kind);
    if (!kernel.ok()) {
      GTEST_SKIP() << kernel.status().ToString();
    }
    kernel_ = *kernel;
  }
  FusedScanFn kernel_ = nullptr;
};

TEST_P(KernelSweepTest, SinglePredicateMatchesReference) {
  const auto [kind, type, op] = GetParam();
  Xoshiro256 rng(static_cast<uint64_t>(type) * 100 +
                 static_cast<uint64_t>(op));
  // Sizes cover empty, sub-register, register-multiple, and ragged tails.
  for (const size_t rows : {0ul, 1ul, 3ul, 4ul, 15ul, 16ul, 17ul, 64ul,
                            100ul, 1000ul, 4099ul}) {
    TestColumns columns;
    std::vector<ScanStage> stages = {
        MakeStage(type, op, rows, rng, columns)};
    ExpectSameOutput(kernel_, FusedKernelKindToString(kind), stages, rows);
  }
}

TEST_P(KernelSweepTest, ChainedWithSecondPredicate) {
  const auto [kind, type, op] = GetParam();
  Xoshiro256 rng(static_cast<uint64_t>(type) * 1000 +
                 static_cast<uint64_t>(op) + 7);
  for (const size_t rows : {33ul, 256ul, 1025ul}) {
    TestColumns columns;
    std::vector<ScanStage> stages;
    // The parameterized stage first, then an i32 equality follow-up; and
    // the reverse order, exercising the gather path for `type`.
    stages.push_back(MakeStage(type, op, rows, rng, columns));
    stages.push_back(
        MakeStage(ScanElementType::kI32, CompareOp::kEq, rows, rng, columns));
    ExpectSameOutput(kernel_, FusedKernelKindToString(kind), stages, rows);

    std::swap(stages[0], stages[1]);
    ExpectSameOutput(kernel_, FusedKernelKindToString(kind), stages, rows);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelSweepTest,
    ::testing::Combine(
        ::testing::Values(FusedKernelKind::kScalar, FusedKernelKind::kAvx2_128,
                          FusedKernelKind::kAvx512_128,
                          FusedKernelKind::kAvx512_256,
                          FusedKernelKind::kAvx512_512),
        ::testing::Values(ScanElementType::kI32, ScanElementType::kU32,
                          ScanElementType::kF32, ScanElementType::kI64,
                          ScanElementType::kU64, ScanElementType::kF64),
        ::testing::ValuesIn(kAllCompareOps)));

// Deep-chain and edge-case tests on the fastest available kernel.
class FusedChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = *GetFusedScanKernel(BestAvailableKernel());
  }
  FusedScanFn kernel_ = nullptr;
};

TEST_F(FusedChainTest, FiveStageChain) {
  Xoshiro256 rng(2024);
  const size_t rows = 10000;
  TestColumns columns;
  std::vector<ScanStage> stages;
  for (int s = 0; s < 5; ++s) {
    stages.push_back(MakeStage(ScanElementType::kI32, CompareOp::kEq, rows,
                               rng, columns));
  }
  ExpectSameOutput(kernel_, "five-stage", stages, rows);
}

TEST_F(FusedChainTest, MaxStageChain) {
  Xoshiro256 rng(2025);
  const size_t rows = 3000;
  TestColumns columns;
  std::vector<ScanStage> stages;
  for (size_t s = 0; s < kMaxScanStages; ++s) {
    stages.push_back(MakeStage(ScanElementType::kI32, CompareOp::kNe, rows,
                               rng, columns));
  }
  ExpectSameOutput(kernel_, "max-stage", stages, rows);
}

TEST_F(FusedChainTest, AllRowsMatch) {
  const size_t rows = 1000;
  AlignedVector<int32_t> data(rows, 5);
  std::vector<ScanStage> stages(2);
  for (auto& stage : stages) {
    stage = {data.data(), ScanElementType::kI32, CompareOp::kEq, {}};
    stage.value.i32 = 5;
  }
  std::vector<uint32_t> out(rows + kScanOutputSlack);
  EXPECT_EQ(kernel_(stages.data(), 2, rows, out.data()), rows);
  for (size_t i = 0; i < rows; ++i) EXPECT_EQ(out[i], i);
}

TEST_F(FusedChainTest, NoRowMatches) {
  const size_t rows = 1000;
  AlignedVector<int32_t> data(rows, 5);
  ScanStage stage{data.data(), ScanElementType::kI32, CompareOp::kEq, {}};
  stage.value.i32 = 6;
  std::vector<uint32_t> out(rows + kScanOutputSlack);
  EXPECT_EQ(kernel_(&stage, 1, rows, out.data()), 0u);
}

TEST_F(FusedChainTest, SingleMatchAtLastRow) {
  const size_t rows = 997;  // Ragged tail.
  AlignedVector<int32_t> a(rows, 1), b(rows, 1);
  a[rows - 1] = 5;
  b[rows - 1] = 2;
  std::vector<ScanStage> stages(2);
  stages[0] = {a.data(), ScanElementType::kI32, CompareOp::kEq, {}};
  stages[0].value.i32 = 5;
  stages[1] = {b.data(), ScanElementType::kI32, CompareOp::kEq, {}};
  stages[1].value.i32 = 2;
  std::vector<uint32_t> out(rows + kScanOutputSlack);
  ASSERT_EQ(kernel_(stages.data(), 2, rows, out.data()), 1u);
  EXPECT_EQ(out[0], rows - 1);
}

TEST(DispatchTest, BestKernelIsAvailable) {
  EXPECT_TRUE(GetFusedScanKernel(BestAvailableKernel()).ok());
}

TEST(DispatchTest, AvailableKernelsAllResolve) {
  for (const FusedKernelKind kind : AvailableKernels()) {
    EXPECT_TRUE(GetFusedScanKernel(kind).ok())
        << FusedKernelKindToString(kind);
  }
}

TEST(DispatchTest, ScalarAlwaysPresent) {
  const auto kinds = AvailableKernels();
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), FusedKernelKind::kScalar),
            kinds.end());
}

TEST(ScanStageTest, ElementTypeMapping) {
  EXPECT_EQ(*ScanElementTypeFromDataType(DataType::kInt32),
            ScanElementType::kI32);
  EXPECT_EQ(*ScanElementTypeFromDataType(DataType::kFloat64),
            ScanElementType::kF64);
  EXPECT_FALSE(ScanElementTypeFromDataType(DataType::kInt8).ok());
  EXPECT_FALSE(ScanElementTypeFromDataType(DataType::kUInt16).ok());
}

TEST(ScanStageTest, MakeScanValueBits) {
  EXPECT_EQ(MakeScanValue(ScanElementType::kI32, Value(int32_t{-7})).i32,
            -7);
  EXPECT_EQ(MakeScanValue(ScanElementType::kU64, Value(uint64_t{1} << 60))
                .u64,
            uint64_t{1} << 60);
  EXPECT_FLOAT_EQ(MakeScanValue(ScanElementType::kF32, Value(2.5f)).f32,
                  2.5f);
}

}  // namespace
}  // namespace fts
