// Cross-engine differential fuzzer. Where property_test checks every
// engine against a boxed-value oracle on friendly value ranges, this
// harness stresses the parts oracles gloss over: row counts that are not
// multiples of the 16/8-lane register widths, boundary values
// (INT32_MIN/MAX and friends), every compare op, predicate chains up to
// the kMaxScanStages limit, mixed encodings — and the morsel-driven
// parallel path at 1/2/4 threads, which must return output
// position-for-position identical to the single-threaded SISD reference.
//
// The reference is the kSisdNoVec engine scanning a *plain twin* of the
// table (same cells, same chunk boundaries, every column decoded), so
// int64/uint32 boundary values that double cannot represent exactly are
// fair game, and every comparison proves the compressed-domain paths
// (RLE/FoR/delta) byte-identical to SISD over decoded data — precisely
// the equivalence the paper's fused kernels and JIT must preserve.
//
// Every failure message carries the seed and a one-line replay command;
// FTS_TEST_SEED=<seed> reruns exactly that case (see tests/test_util.h).

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "fts/common/cpu_info.h"
#include "fts/common/fault_injection.h"
#include "fts/common/random.h"
#include "fts/common/string_util.h"
#include "fts/exec/parallel_scan.h"
#include "fts/exec/task_pool.h"
#include "fts/jit/jit_scan_engine.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/compare_op.h"
#include "fts/storage/table_builder.h"
#include "test_util.h"

namespace fts {
namespace {

constexpr const char* kBinary = "differential_test";

// Row counts the lane widths mistreat first: empty, single row, one off
// either side of the 8- and 16-lane widths, one off a 64-row block, and a
// couple of sizes that are not multiples of anything interesting.
constexpr size_t kAwkwardRows[] = {1, 2, 7, 15, 16, 17, 31, 33,
                                   63, 64, 65, 100, 127, 129, 1000};

Value RandomLiteral(DataType type, Xoshiro256& rng) {
  // 1-in-8 draws pick a boundary value of the column type; the rest stay
  // in a small range so conjunctions keep matching rows.
  const bool boundary = rng.NextBounded(8) == 0;
  const int64_t small = static_cast<int64_t>(rng.NextBounded(20)) - 10;
  switch (type) {
    case DataType::kInt32:
      if (boundary) {
        constexpr int32_t kEdges[] = {INT32_MIN, INT32_MIN + 1, -1, 0,
                                      INT32_MAX - 1, INT32_MAX};
        return Value(kEdges[rng.NextBounded(6)]);
      }
      return Value(static_cast<int32_t>(small));
    case DataType::kInt64:
      if (boundary) {
        constexpr int64_t kEdges[] = {INT64_MIN, INT64_MIN + 1, -1, 0,
                                      INT64_MAX - 1, INT64_MAX};
        return Value(kEdges[rng.NextBounded(6)]);
      }
      return Value(small * 1000000007LL);
    case DataType::kUInt32:
      if (boundary) {
        constexpr uint32_t kEdges[] = {0, 1, UINT32_MAX - 1, UINT32_MAX};
        return Value(kEdges[rng.NextBounded(4)]);
      }
      return Value(static_cast<uint32_t>(small + 10));
    case DataType::kFloat64:
      // Halves are exact; boundaries use huge magnitudes (NaN is excluded
      // on purpose — it is not a storage value the generator produces).
      if (boundary) {
        constexpr double kEdges[] = {-1e300, -0.0, 0.0, 1e300};
        return Value(kEdges[rng.NextBounded(4)]);
      }
      return Value(static_cast<double>(small) / 2.0);
    default:
      return Value(static_cast<int32_t>(small));
  }
}

// A handful of clustered values for "narrow" columns: chunk-local
// dictionaries then hold very few codes, so zone maps routinely prove a
// predicate impossible or tautological for individual chunks — the
// per-chunk drop/impossible machinery every rung must honor identically.
Value NarrowLiteral(DataType type, Xoshiro256& rng) {
  const int64_t pick = static_cast<int64_t>(rng.NextBounded(3)) * 5 - 5;
  switch (type) {
    case DataType::kInt32:
      return Value(static_cast<int32_t>(pick));
    case DataType::kInt64:
      return Value(pick * 1000000007LL);
    case DataType::kUInt32:
      return Value(static_cast<uint32_t>(pick + 5));
    case DataType::kFloat64:
      return Value(static_cast<double>(pick) / 2.0);
    default:
      return Value(static_cast<int32_t>(pick));
  }
}

struct FuzzCase {
  // The encoded table under test: each column draws one of the six
  // encodings (plain/dict/bit-packed/RLE/FoR/delta).
  TablePtr table;
  // Plain twin built from the same cells with the same chunk boundaries.
  // The reference scan runs SISD over this *decoded* data, so the
  // comparison proves the compressed-domain paths, not just cross-engine
  // agreement on one representation.
  TablePtr plain_table;
  ScanSpec spec;
};

// Chunks the prepared scanner will actually schedule: not proven
// impossible (dictionary translation or zone maps) and not empty. The
// parallel path excludes the rest before morsel creation.
size_t RunnableChunks(const TableScanner& scanner) {
  size_t runnable = 0;
  for (const TableScanner::ChunkPlan& plan : scanner.chunk_plans()) {
    if (!plan.impossible && plan.row_count > 0) ++runnable;
  }
  return runnable;
}

// Whether the JIT rung compiles every runnable chunk: pure kernel-stage
// chunks and all-RLE compressed chains do; a chunk mixing compressed and
// kernel stages, or carrying a delta-domain stage, demotes its morsel to
// the interpreted range path by design — the ladder records that as a
// (correct) degradation.
bool JitCompilesEveryRunnableChunk(const TableScanner& scanner) {
  for (const TableScanner::ChunkPlan& plan : scanner.chunk_plans()) {
    if (plan.impossible || plan.row_count == 0) continue;
    if (plan.compressed.empty()) continue;
    if (!plan.stages.empty()) return false;
    for (const CompressedScanStage& stage : plan.compressed) {
      if (stage.column->encoding() != ColumnEncoding::kRle) return false;
    }
  }
  return true;
}

FuzzCase MakeCase(uint64_t seed) {
  Xoshiro256 rng(seed);
  FuzzCase result;

  // Half the cases use an awkward row count, half a random one.
  const size_t rows = rng.NextBounded(2) == 0
                          ? kAwkwardRows[rng.NextBounded(
                                std::size(kAwkwardRows))]
                          : rng.NextBounded(4000) + 1;
  const size_t num_columns = rng.NextBounded(4) + 1;
  const DataType kTypes[] = {DataType::kInt32, DataType::kInt64,
                             DataType::kUInt32, DataType::kFloat64};

  std::vector<ColumnDefinition> schema;
  for (size_t c = 0; c < num_columns; ++c) {
    schema.push_back({StrFormat("c%zu", c), kTypes[rng.NextBounded(4)]});
  }
  // Random chunking so the parallel path usually sees several morsels,
  // including tail chunks of awkward sizes.
  const size_t chunk_size = rng.NextBounded(2) == 0
                                ? rng.NextBounded(rows) + 1
                                : rows;
  TableBuilder builder(schema, chunk_size);
  // Plain twin fed the identical rows: the reference scans *decoded*
  // data, so every engine-vs-reference comparison also proves the
  // compressed-domain evaluation (RLE run classification, FoR rebase,
  // delta block reconstruction), not just engine agreement.
  TableBuilder plain_builder(schema, chunk_size);
  std::vector<bool> narrow(num_columns, false);
  for (size_t c = 0; c < num_columns; ++c) {
    // All six encodings, uniformly. Requests are per-chunk best-effort:
    // FoR/delta on float columns, boundary-valued chunks whose deltas
    // exceed the packed widths, and oversized dictionaries fall back to
    // plain for that chunk, which is itself a path worth fuzzing.
    // Bit-packing caps the dictionary at kMaxPackedBits; boundary draws
    // keep cardinality small (a handful of edge values), so it fits.
    constexpr ColumnEncoding kDraw[] = {
        ColumnEncoding::kPlain,   ColumnEncoding::kDictionary,
        ColumnEncoding::kBitPacked, ColumnEncoding::kRle,
        ColumnEncoding::kFor,     ColumnEncoding::kDelta};
    builder.SetEncoding(c, kDraw[rng.NextBounded(std::size(kDraw))]);
    // A third of columns draw from a 3-value set so chunk dictionaries
    // and zone maps frequently prune or drop per chunk — and RLE columns
    // collapse into long runs.
    narrow[c] = rng.NextBounded(3) == 0;
  }

  std::vector<Value> row(num_columns, Value(int32_t{0}));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < num_columns; ++c) {
      row[c] = narrow[c] ? NarrowLiteral(schema[c].type, rng)
                         : RandomLiteral(schema[c].type, rng);
    }
    FTS_CHECK(builder.AppendRow(row).ok());
    FTS_CHECK(plain_builder.AppendRow(row).ok());
  }
  result.table = builder.Build();
  result.plain_table = plain_builder.Build();

  // 1..7 predicates — up to one short of kMaxScanStages, exercising the
  // deepest chains the static kernels unroll.
  const size_t num_predicates = rng.NextBounded(7) + 1;
  for (size_t p = 0; p < num_predicates; ++p) {
    const size_t column = rng.NextBounded(num_columns);
    PredicateSpec predicate;
    predicate.column = schema[column].name;
    predicate.op = kAllCompareOps[rng.NextBounded(6)];
    predicate.value = RandomLiteral(schema[column].type, rng);
    result.spec.predicates.push_back(predicate);
  }
  return result;
}

// Position-for-position comparison against the reference, chunk by chunk.
void ExpectSameMatches(const TableMatches& reference,
                       const TableMatches& got, const std::string& what,
                       uint64_t seed, const ScanSpec& spec) {
  const std::string context =
      StrFormat("%s seed=%llu spec=%s\n%s", what.c_str(),
                static_cast<unsigned long long>(seed),
                spec.ToString().c_str(),
                testing::ReplayCommand(kBinary, seed).c_str());
  ASSERT_EQ(reference.chunks.size(), got.chunks.size()) << context;
  for (size_t i = 0; i < reference.chunks.size(); ++i) {
    ASSERT_EQ(reference.chunks[i].chunk_id, got.chunks[i].chunk_id)
        << context;
    ASSERT_EQ(reference.chunks[i].positions, got.chunks[i].positions)
        << context << "\nchunk " << reference.chunks[i].chunk_id;
  }
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// Every static rung (and Blockwise) returns exactly what the SISD
// reference scan returns.
TEST_P(DifferentialTest, StaticEnginesMatchSisdReference) {
  const uint64_t seed = GetParam();
  const FuzzCase fuzz = MakeCase(seed);

  const auto prepared = TableScanner::Prepare(fuzz.table, fuzz.spec);
  const auto prepared_plain = TableScanner::Prepare(fuzz.plain_table, fuzz.spec);
  // Literal representability depends on the logical type, never the
  // encoding: the encoded table and its plain twin must agree on whether
  // the spec prepares at all.
  ASSERT_EQ(prepared.ok(), prepared_plain.ok())
      << testing::ReplayCommand(kBinary, seed);
  if (!prepared.ok()) {
    // Non-representable literal: every engine must reject identically.
    for (const ScanEngine engine :
         {ScanEngine::kSisdNoVec, ScanEngine::kScalarFused,
          ScanEngine::kAvx512Fused512}) {
      if (!ScanEngineAvailable(engine)) continue;
      EXPECT_FALSE(ExecuteScan(fuzz.table, fuzz.spec, engine).ok())
          << testing::ReplayCommand(kBinary, seed);
    }
    return;
  }

  // SISD over the decoded plain twin is the ground truth.
  const auto reference = prepared_plain->Execute(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString() << "\n"
                              << testing::ReplayCommand(kBinary, seed);
  const auto reference_count =
      prepared_plain->ExecuteCount(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(reference_count.ok());

  // The SISD rung over the *encoded* table must already agree with it.
  {
    const auto encoded_sisd = prepared->Execute(ScanEngine::kSisdNoVec);
    ASSERT_TRUE(encoded_sisd.ok()) << encoded_sisd.status().ToString()
                                   << "\n"
                                   << testing::ReplayCommand(kBinary, seed);
    ExpectSameMatches(*reference, *encoded_sisd, "sisd(encoded)", seed,
                      fuzz.spec);
  }

  for (const ScanEngine engine :
       {ScanEngine::kSisdAutoVec, ScanEngine::kScalarFused,
        ScanEngine::kAvx2Fused128, ScanEngine::kAvx512Fused128,
        ScanEngine::kAvx512Fused256, ScanEngine::kAvx512Fused512,
        ScanEngine::kBlockwise}) {
    if (!ScanEngineAvailable(engine)) continue;
    const auto matches = prepared->Execute(engine);
    ASSERT_TRUE(matches.ok())
        << ScanEngineToString(engine) << ": " << matches.status().ToString()
        << "\n" << testing::ReplayCommand(kBinary, seed);
    ExpectSameMatches(*reference, *matches, ScanEngineToString(engine),
                      seed, fuzz.spec);
    const auto count = prepared->ExecuteCount(engine);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, *reference_count)
        << ScanEngineToString(engine) << " "
        << testing::ReplayCommand(kBinary, seed);
  }
}

// The morsel-driven parallel path returns byte-identical output at every
// thread count. Static engines only here — the JIT rungs get their own,
// smaller seed range below, and TSan cannot follow JIT-compiled code.
TEST_P(DifferentialTest, ParallelPathMatchesSisdReference) {
  const uint64_t seed = GetParam();
  const FuzzCase fuzz = MakeCase(seed);

  const auto prepared = TableScanner::Prepare(fuzz.table, fuzz.spec);
  if (!prepared.ok()) return;
  // Reference = SISD over the decoded plain twin; the morsel path runs
  // over the encoded table and must merge to the identical output.
  const auto prepared_plain = TableScanner::Prepare(fuzz.plain_table, fuzz.spec);
  ASSERT_TRUE(prepared_plain.ok());
  const auto reference = prepared_plain->Execute(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(reference.ok());
  const auto reference_count =
      prepared_plain->ExecuteCount(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(reference_count.ok());

  const ScanEngine requested_engines[] = {
      ScanEngine::kScalarFused,
      GetCpuFeatures().HasFusedScanAvx512() ? ScanEngine::kAvx512Fused512
                                            : ScanEngine::kSisdAutoVec};
  for (const ScanEngine requested : requested_engines) {
    for (const int threads : {1, 2, 4}) {
      ParallelScanOptions options;
      options.requested = {requested, 0};
      options.fallback = FallbackPolicy::kStrict;
      options.threads = threads;
      ExecutionReport report;
      const auto matches = ExecuteParallelScan(*prepared, options, &report);
      ASSERT_TRUE(matches.ok())
          << matches.status().ToString() << "\n"
          << testing::ReplayCommand(kBinary, seed);
      ExpectSameMatches(
          *reference, *matches,
          StrFormat("parallel(%s, threads=%d)",
                    ScanEngineToString(requested), threads),
          seed, fuzz.spec);
      const size_t runnable = RunnableChunks(*prepared);
      EXPECT_EQ(report.worker_count, runnable > 1 ? threads : 1);
      EXPECT_EQ(report.morsel_count, runnable);
      EXPECT_EQ(report.chunks_total, fuzz.table->chunk_count());
      EXPECT_LE(report.chunks_pruned, fuzz.table->chunk_count() - runnable)
          << "pruned chunks must be a subset of the non-runnable ones";

      const auto count = ExecuteParallelScanCount(*prepared, options);
      ASSERT_TRUE(count.ok());
      EXPECT_EQ(*count, *reference_count)
          << testing::ReplayCommand(kBinary, seed);
    }
  }
}

// The cost model must be invisible in the output: the same fuzz case run
// with FTS_ADAPTIVE=0 (no re-ranking, no engine adaptation) and with
// FTS_ADAPTIVE=1 + spec.adaptive (chains re-ranked per chunk, engines
// free to switch) returns byte-identical positions on the serial path and
// on the morsel path at every thread count. AdaptiveEnabled() is re-read
// per Prepare, so one process can prepare both variants.
TEST_P(DifferentialTest, AdaptiveOnOffByteIdentical) {
  const uint64_t seed = GetParam();
  FuzzCase fuzz = MakeCase(seed);
  fuzz.spec.adaptive = true;
  // The first adaptive Prepare in the process calibrates; keep it short.
  setenv("FTS_CALIBRATE_FAST", "1", 1);

  setenv("FTS_ADAPTIVE", "0", 1);
  const auto off = TableScanner::Prepare(fuzz.table, fuzz.spec);
  setenv("FTS_ADAPTIVE", "1", 1);
  const auto on = TableScanner::Prepare(fuzz.table, fuzz.spec);
  unsetenv("FTS_ADAPTIVE");
  ASSERT_EQ(off.ok(), on.ok()) << testing::ReplayCommand(kBinary, seed);
  if (!off.ok()) return;
  EXPECT_FALSE(off->model_active());
  EXPECT_TRUE(on->model_active());
  EXPECT_TRUE(on->adaptive());

  const ScanEngine engines[] = {
      ScanEngine::kSisdNoVec, ScanEngine::kScalarFused,
      GetCpuFeatures().HasFusedScanAvx512() ? ScanEngine::kAvx512Fused512
                                            : ScanEngine::kSisdAutoVec};
  for (const ScanEngine engine : engines) {
    const auto reference = off->Execute(engine);
    ASSERT_TRUE(reference.ok()) << ScanEngineToString(engine) << "\n"
                                << testing::ReplayCommand(kBinary, seed);
    const auto adapted = on->Execute(engine);
    ASSERT_TRUE(adapted.ok()) << ScanEngineToString(engine) << "\n"
                              << testing::ReplayCommand(kBinary, seed);
    ExpectSameMatches(*reference, *adapted,
                      StrFormat("adaptive(%s)", ScanEngineToString(engine)),
                      seed, fuzz.spec);
    const auto reference_count = off->ExecuteCount(engine);
    const auto adapted_count = on->ExecuteCount(engine);
    ASSERT_TRUE(reference_count.ok() && adapted_count.ok());
    EXPECT_EQ(*reference_count, *adapted_count)
        << ScanEngineToString(engine) << " "
        << testing::ReplayCommand(kBinary, seed);

    for (const int threads : {1, 2, 4}) {
      ParallelScanOptions options;
      options.requested = {engine, 0};
      options.threads = threads;
      ExecutionReport report;
      const auto parallel = ExecuteParallelScan(*on, options, &report);
      ASSERT_TRUE(parallel.ok())
          << parallel.status().ToString() << "\n"
          << testing::ReplayCommand(kBinary, seed);
      ExpectSameMatches(
          *reference, *parallel,
          StrFormat("adaptive-parallel(%s, threads=%d)",
                    ScanEngineToString(engine), threads),
          seed, fuzz.spec);
      // A model-driven engine switch is not a failure demotion.
      EXPECT_FALSE(report.degraded)
          << ScanEngineToString(engine) << " threads=" << threads << "\n"
          << testing::ReplayCommand(kBinary, seed);
      EXPECT_TRUE(report.model_active);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::ValuesIn(testing::SeedRange(1, 49)));

// Deterministic narrow-dictionary table: each chunk's c0 holds exactly one
// value (the chunk index), so for `c0 >= 3 AND c0 <= 5 AND c1 >= 2` the
// prepared plans must mark chunks 0-2 and 6-7 impossible and drop both c0
// stages from chunks 3-5 — identically on the serial path and the morsel
// path at every thread count, on every rung.
TEST(NarrowDictionaryDifferentialTest, PerChunkDropAndImpossibleEveryRung) {
  constexpr size_t kChunks = 8;
  constexpr size_t kRowsPerChunk = 257;  // Awkward: not a lane multiple.
  TableBuilder builder({{"c0", DataType::kInt32}, {"c1", DataType::kInt32}},
                       kRowsPerChunk);
  builder.SetDictionaryEncoded(0);
  builder.SetBitPacked(1);
  for (size_t chunk = 0; chunk < kChunks; ++chunk) {
    for (size_t r = 0; r < kRowsPerChunk; ++r) {
      FTS_CHECK(builder
                    .AppendRow({Value(static_cast<int32_t>(chunk)),
                                Value(static_cast<int32_t>(r % 5))})
                    .ok());
    }
  }
  const TablePtr table = builder.Build();

  ScanSpec spec;
  spec.predicates = {{"c0", CompareOp::kGe, Value(int32_t{3})},
                     {"c0", CompareOp::kLe, Value(int32_t{5})},
                     {"c1", CompareOp::kGe, Value(int32_t{2})}};

  const auto prepared = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(prepared.ok());
  ASSERT_EQ(prepared->chunk_plans().size(), kChunks);
  for (size_t chunk = 0; chunk < kChunks; ++chunk) {
    const TableScanner::ChunkPlan& plan = prepared->chunk_plans()[chunk];
    if (chunk >= 3 && chunk <= 5) {
      EXPECT_FALSE(plan.impossible) << "chunk " << chunk;
      EXPECT_EQ(plan.stages.size(), 1u) << "chunk " << chunk;
    } else {
      EXPECT_TRUE(plan.impossible) << "chunk " << chunk;
    }
  }
  EXPECT_EQ(prepared->pruning().chunks_pruned, kChunks - 3);
  EXPECT_EQ(prepared->pruning().stages_dropped, 3u * 2u);
  EXPECT_EQ(RunnableChunks(*prepared), 3u);

  const auto reference = prepared->Execute(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(reference.ok());
  // 3 chunks survive; c1 >= 2 keeps r%5 in {2,3,4}, 51 rows each in 0..256.
  EXPECT_EQ(reference->TotalMatches(), 3u * 3u * (kRowsPerChunk / 5));

  for (const ScanEngine engine :
       {ScanEngine::kSisdNoVec, ScanEngine::kSisdAutoVec,
        ScanEngine::kScalarFused, ScanEngine::kAvx2Fused128,
        ScanEngine::kAvx512Fused128, ScanEngine::kAvx512Fused256,
        ScanEngine::kAvx512Fused512, ScanEngine::kBlockwise}) {
    if (!ScanEngineAvailable(engine)) continue;
    const auto serial = prepared->Execute(engine);
    ASSERT_TRUE(serial.ok()) << ScanEngineToString(engine);
    ExpectSameMatches(*reference, *serial, ScanEngineToString(engine),
                      /*seed=*/0, spec);
    for (const int threads : {1, 2, 4}) {
      ParallelScanOptions options;
      options.requested = {engine, 0};
      options.fallback = FallbackPolicy::kStrict;
      options.threads = threads;
      ExecutionReport report;
      const auto parallel = ExecuteParallelScan(*prepared, options, &report);
      ASSERT_TRUE(parallel.ok())
          << ScanEngineToString(engine) << " threads=" << threads;
      ExpectSameMatches(*reference, *parallel,
                        StrFormat("parallel(%s, threads=%d)",
                                  ScanEngineToString(engine), threads),
                        /*seed=*/0, spec);
      EXPECT_EQ(report.chunks_pruned, kChunks - 3);
      EXPECT_EQ(report.stages_dropped, 3u * 2u);
      EXPECT_EQ(report.morsel_count, 3u);
      EXPECT_GT(report.bytes_skipped, 0u);
    }
  }
}

// JIT rungs are expensive per distinct signature (one compiler invocation
// each), so they run over a handful of seeds. Skipped under TSan: the
// dlopen'd operators are uninstrumented code TSan cannot model.
class JitDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JitDifferentialTest, JitEnginesMatchSisdReference) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "JIT-compiled code is not TSan-instrumented";
#endif
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    GTEST_SKIP() << "AVX-512 not available";
  }
  const uint64_t seed = GetParam();
  const FuzzCase fuzz = MakeCase(seed);
  const auto prepared = TableScanner::Prepare(fuzz.table, fuzz.spec);
  if (!prepared.ok()) return;
  const auto prepared_plain = TableScanner::Prepare(fuzz.plain_table, fuzz.spec);
  ASSERT_TRUE(prepared_plain.ok());
  const auto reference = prepared_plain->Execute(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(reference.ok());

  // Serial JIT engine...
  JitScanEngine engine(512);
  const auto serial = engine.Execute(fuzz.table, fuzz.spec);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString() << "\n"
                           << testing::ReplayCommand(kBinary, seed);
  ExpectSameMatches(*reference, *serial, "jit512", seed, fuzz.spec);

  // ... and the parallel path running the JIT rung per morsel, where
  // concurrent compiles of the same signature must single-flight.
  for (const int threads : {2, 4}) {
    ParallelScanOptions options;
    options.requested = {ScanEngine::kJit, 512};
    options.threads = threads;
    ExecutionReport report;
    const auto parallel = ExecuteParallelScan(*prepared, options, &report);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString() << "\n"
                               << testing::ReplayCommand(kBinary, seed);
    ExpectSameMatches(*reference, *parallel,
                      StrFormat("parallel(jit512, threads=%d)", threads),
                      seed, fuzz.spec);
    // Degradation happens exactly when some runnable chunk is outside the
    // JIT's coverage (mixed compressed/kernel, or delta-domain stages) —
    // never for a chunk it claims to compile.
    EXPECT_EQ(report.degraded, !JitCompilesEveryRunnableChunk(*prepared))
        << report.ToString() << "\n"
        << testing::ReplayCommand(kBinary, seed);
  }
}

// Same adaptive on/off identity for the JIT rung: the model may route
// individual chunks to cheaper engines (or skip a compile it predicts
// will not amortize), but the merged output must not move.
TEST_P(JitDifferentialTest, AdaptiveOnOffByteIdenticalUnderJit) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "JIT-compiled code is not TSan-instrumented";
#endif
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    GTEST_SKIP() << "AVX-512 not available";
  }
  const uint64_t seed = GetParam();
  FuzzCase fuzz = MakeCase(seed);
  fuzz.spec.adaptive = true;
  setenv("FTS_CALIBRATE_FAST", "1", 1);

  setenv("FTS_ADAPTIVE", "0", 1);
  const auto off = TableScanner::Prepare(fuzz.table, fuzz.spec);
  setenv("FTS_ADAPTIVE", "1", 1);
  const auto on = TableScanner::Prepare(fuzz.table, fuzz.spec);
  unsetenv("FTS_ADAPTIVE");
  ASSERT_EQ(off.ok(), on.ok());
  if (!off.ok()) return;

  const auto reference = off->Execute(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(reference.ok());

  for (const int threads : {1, 2, 4}) {
    ParallelScanOptions options;
    options.requested = {ScanEngine::kJit, 512};
    options.threads = threads;
    ExecutionReport report;
    const auto adapted = ExecuteParallelScan(*on, options, &report);
    ASSERT_TRUE(adapted.ok()) << adapted.status().ToString() << "\n"
                              << testing::ReplayCommand(kBinary, seed);
    ExpectSameMatches(*reference, *adapted,
                      StrFormat("adaptive-parallel(jit512, threads=%d)",
                                threads),
                      seed, fuzz.spec);
    EXPECT_TRUE(report.model_active);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitDifferentialTest,
                         ::testing::ValuesIn(testing::SeedRange(200, 204)));

// A JIT compile failing for *one* morsel mid-query must demote only that
// morsel's rung, never corrupt the merged output. The fault fires once,
// and the fresh cache means the first compile attempt hits it.
TEST(DifferentialFaultTest, MidQueryCompileFailureKeepsOutputIdentical) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "JIT-compiled code is not TSan-instrumented";
#endif
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    GTEST_SKIP() << "AVX-512 not available";
  }
  const uint64_t seed = 7;
  const FuzzCase fuzz = MakeCase(seed);
  const auto prepared = TableScanner::Prepare(fuzz.table, fuzz.spec);
  ASSERT_TRUE(prepared.ok());
  const auto prepared_plain = TableScanner::Prepare(fuzz.plain_table, fuzz.spec);
  ASSERT_TRUE(prepared_plain.ok());
  const auto reference = prepared_plain->Execute(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(reference.ok());

  JitCache cache;  // Fresh cache so the armed fault hits a real compile.
  ScopedFault fault("jit.compile_error", /*times=*/1);
  ParallelScanOptions options;
  options.requested = {ScanEngine::kJit, 512};
  options.threads = 2;
  options.cache = &cache;
  ExecutionReport report;
  const auto matches = ExecuteParallelScan(*prepared, options, &report);
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  ExpectSameMatches(*reference, *matches, "parallel(jit512, fault)", seed,
                    fuzz.spec);
  // The report records the per-morsel decisions either way; whether a
  // rung actually demoted depends on which compile drew the fault (the
  // cache retries failed signatures once). Pruned chunks never choose an
  // engine, so only runnable chunks appear.
  EXPECT_EQ(report.morsel_choices.size(), RunnableChunks(*prepared));
}

}  // namespace
}  // namespace fts
