// Tests for per-thread PMU attribution (DESIGN.md §15). Hardware counters
// are host-dependent (perf_event_open may be unavailable in CI or VMs), so
// these tests pin down the contract on BOTH paths: with a PMU, regions
// yield valid monotone deltas; without one, everything degrades to
// invalid-but-safe no-ops instead of zeros masquerading as measurements.

#include "fts/perf/counter_attribution.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fts {
namespace {

TEST(CounterDeltaTest, AccumulateSkipsInvalidAndSums) {
  CounterDelta sum;
  EXPECT_FALSE(sum.valid);

  CounterDelta invalid;  // valid == false: must not contribute
  invalid.cycles = 1000;
  sum.Accumulate(invalid);
  EXPECT_FALSE(sum.valid);
  EXPECT_EQ(sum.cycles, 0u);

  CounterDelta a;
  a.valid = true;
  a.cycles = 10;
  a.instructions = 20;
  a.branches = 5;
  a.branch_misses = 1;
  sum.Accumulate(a);
  sum.Accumulate(a);
  EXPECT_TRUE(sum.valid);
  EXPECT_EQ(sum.cycles, 20u);
  EXPECT_EQ(sum.instructions, 40u);
  EXPECT_EQ(sum.branches, 10u);
  EXPECT_EQ(sum.branch_misses, 2u);
}

TEST(ThreadCountersTest, UnavailablePmuDegradesToNoops) {
  ThreadCounters& counters = ThreadCounters::ForCurrentThread();
  // Same thread, same instance (the group is cached thread-locally).
  EXPECT_EQ(&ThreadCounters::ForCurrentThread(), &counters);

  if (!counters.available()) {
    EXPECT_FALSE(counters.Start());
    const CounterDelta delta = counters.StopAndRead();
    EXPECT_FALSE(delta.valid);
    return;
  }
  // PMU present: a measured region over real work yields a valid,
  // non-degenerate delta.
  ASSERT_TRUE(counters.Start());
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 100'000; ++i) sink += i;
  const CounterDelta delta = counters.StopAndRead();
  EXPECT_TRUE(delta.valid);
  EXPECT_GT(delta.instructions, 0u);
}

TEST(CounterRegionTest, DisabledRegionIsInert) {
  CounterRegion region(/*enabled=*/false);
  const CounterDelta delta = region.Finish();
  EXPECT_FALSE(delta.valid);
  EXPECT_EQ(delta.cycles, 0u);
}

TEST(CounterRegionTest, FinishIsIdempotent) {
  CounterRegion region(/*enabled=*/true);
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 10'000; ++i) sink += i;
  const CounterDelta first = region.Finish();
  const CounterDelta second = region.Finish();
  // Whatever the first call returned (valid iff a PMU armed), the second
  // must be invalid: the delta is handed out exactly once.
  EXPECT_FALSE(second.valid);
  if (ThreadCounters::ForCurrentThread().available()) {
    EXPECT_TRUE(first.valid);
  } else {
    EXPECT_FALSE(first.valid);
  }
}

TEST(CounterRegionTest, UnfinishedRegionDisarmsInDestructor) {
  {
    CounterRegion region(/*enabled=*/true);
    // Dropped without Finish(): the destructor must disarm so the next
    // region on this thread starts clean.
  }
  CounterRegion next(/*enabled=*/true);
  const CounterDelta delta = next.Finish();
  EXPECT_EQ(delta.valid, ThreadCounters::ForCurrentThread().available());
}

TEST(CounterRegionTest, EachThreadOwnsItsOwnGroup) {
  // Regions on distinct threads must not interfere: every thread can
  // open, measure, and finish independently (valid iff its PMU opened).
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<int> results(kThreads, -1);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &results] {
      CounterRegion region(/*enabled=*/true);
      volatile uint64_t sink = 0;
      for (uint64_t i = 0; i < 50'000; ++i) sink += i;
      const CounterDelta delta = region.Finish();
      const bool have_pmu = ThreadCounters::ForCurrentThread().available();
      results[t] = (delta.valid == have_pmu) ? 1 : 0;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t], 1) << "thread " << t;
  }
}

}  // namespace
}  // namespace fts
