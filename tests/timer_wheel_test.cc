// Unit tests for the hashed timer wheel (fts/exec/timer_wheel.h): expiry
// ordering, cascading when the delay exceeds one wheel revolution, cancel
// before fire, and the live tick thread. The deterministic cases drive
// time manually with AdvanceForTest (start_thread = false) so slot and
// round arithmetic is tested without wall-clock races.

#include "fts/exec/timer_wheel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace fts {
namespace {

TimerWheel::Options ManualOptions(int64_t tick_millis = 1,
                                  size_t slots = 8) {
  TimerWheel::Options options;
  options.tick_millis = tick_millis;
  options.slots = slots;
  options.start_thread = false;
  return options;
}

TEST(TimerWheelTest, FiresInExpiryOrder) {
  TimerWheel wheel(ManualOptions());
  std::vector<int> fired;
  wheel.Schedule(3, [&] { fired.push_back(3); });
  wheel.Schedule(1, [&] { fired.push_back(1); });
  wheel.Schedule(2, [&] { fired.push_back(2); });
  EXPECT_EQ(wheel.pending(), 3u);

  wheel.AdvanceForTest(1);
  EXPECT_EQ(fired, std::vector<int>({1}));
  wheel.AdvanceForTest(1);
  EXPECT_EQ(fired, std::vector<int>({1, 2}));
  wheel.AdvanceForTest(1);
  EXPECT_EQ(fired, std::vector<int>({1, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(wheel.stats().fired, 3u);
}

TEST(TimerWheelTest, NonPositiveDelayFiresOnNextTick) {
  TimerWheel wheel(ManualOptions());
  int fired = 0;
  wheel.Schedule(0, [&] { ++fired; });
  wheel.Schedule(-5, [&] { ++fired; });
  EXPECT_EQ(fired, 0);  // Never synchronously in Schedule.
  wheel.AdvanceForTest(1);
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheelTest, CascadesDelaysLongerThanOneRevolution) {
  // 8 slots x 1 ms: a 20-tick timer must survive two full cursor passes
  // (rounds = 2) before firing in its slot on the third.
  TimerWheel wheel(ManualOptions(1, 8));
  int fired = 0;
  wheel.Schedule(20, [&] { ++fired; });

  wheel.AdvanceForTest(8);
  EXPECT_EQ(fired, 0);
  wheel.AdvanceForTest(8);
  EXPECT_EQ(fired, 0);
  EXPECT_GE(wheel.stats().cascaded, 2u);  // Visited once per revolution.
  wheel.AdvanceForTest(4);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, ManyTimersInterleavedAcrossSlots) {
  TimerWheel wheel(ManualOptions(1, 4));
  std::vector<int> fired;
  for (int delay = 1; delay <= 12; ++delay) {
    wheel.Schedule(delay, [&fired, delay] { fired.push_back(delay); });
  }
  wheel.AdvanceForTest(12);
  std::vector<int> expected;
  for (int delay = 1; delay <= 12; ++delay) expected.push_back(delay);
  EXPECT_EQ(fired, expected);
}

TEST(TimerWheelTest, CancelBeforeFire) {
  TimerWheel wheel(ManualOptions());
  int fired = 0;
  const TimerWheel::TimerId keep = wheel.Schedule(2, [&] { ++fired; });
  const TimerWheel::TimerId cancel = wheel.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(wheel.Cancel(cancel));
  EXPECT_FALSE(wheel.Cancel(cancel));  // Already removed.
  wheel.AdvanceForTest(2);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(wheel.Cancel(keep));  // Already fired.
  EXPECT_EQ(wheel.stats().cancelled, 1u);
  EXPECT_EQ(wheel.stats().fired, 1u);
}

TEST(TimerWheelTest, CancelUnknownIdIsFalse) {
  TimerWheel wheel(ManualOptions());
  EXPECT_FALSE(wheel.Cancel(12345));
}

TEST(TimerWheelTest, StatsCountScheduled) {
  TimerWheel wheel(ManualOptions());
  wheel.Schedule(1, [] {});
  wheel.Schedule(1, [] {});
  EXPECT_EQ(wheel.stats().scheduled, 2u);
}

TEST(TimerWheelTest, TickThreadFiresWithoutManualAdvance) {
  TimerWheel wheel;  // Default options: live 1 ms tick thread.
  std::atomic<bool> fired{false};
  wheel.Schedule(5, [&] { fired.store(true); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!fired.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fired.load());
}

TEST(TimerWheelTest, DestructorDropsPendingTimers) {
  int fired = 0;
  {
    TimerWheel wheel(ManualOptions());
    wheel.Schedule(100, [&] { ++fired; });
  }
  EXPECT_EQ(fired, 0);
}

TEST(TimerWheelTest, GlobalWheelIsSingleInstance) {
  EXPECT_EQ(&TimerWheel::Global(), &TimerWheel::Global());
}

}  // namespace
}  // namespace fts
