#ifndef FTS_TESTS_TEST_UTIL_H_
#define FTS_TESTS_TEST_UTIL_H_

// Shared helpers for the randomized suites (property_test,
// differential_test). The one facility that matters: FTS_TEST_SEED.
// Every randomized failure message prints a replay command of the form
//
//   FTS_TEST_SEED=<seed> ./build/tests/<binary>
//
// and setting that variable makes the parameterized suites run *only* the
// named seed, so a fuzz failure reproduces in one process with one case.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fts/common/env.h"
#include "fts/common/string_util.h"

namespace fts::testing {

// Seed forced via FTS_TEST_SEED, if any. Unset (or negative) means "run
// the suite's normal seed range".
inline std::optional<uint64_t> SeedOverride() {
  const int64_t seed = GetEnvInt64("FTS_TEST_SEED", -1);
  if (seed < 0) return std::nullopt;
  return static_cast<uint64_t>(seed);
}

// The seeds a parameterized suite should instantiate: [lo, hi) normally,
// or just the FTS_TEST_SEED override when one is set.
inline std::vector<uint64_t> SeedRange(uint64_t lo, uint64_t hi) {
  if (const auto forced = SeedOverride()) return {*forced};
  std::vector<uint64_t> seeds;
  seeds.reserve(static_cast<size_t>(hi - lo));
  for (uint64_t seed = lo; seed < hi; ++seed) seeds.push_back(seed);
  return seeds;
}

// Replay hint appended to randomized-failure messages.
inline std::string ReplayCommand(const char* binary, uint64_t seed) {
  return StrFormat("replay: FTS_TEST_SEED=%llu ./build/tests/%s",
                   static_cast<unsigned long long>(seed), binary);
}

}  // namespace fts::testing

#endif  // FTS_TESTS_TEST_UTIL_H_
