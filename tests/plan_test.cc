#include <gtest/gtest.h>

#include "fts/common/string_util.h"
#include "fts/plan/lqp.h"
#include "fts/plan/optimizer.h"
#include "fts/plan/physical_plan.h"
#include "fts/plan/translator.h"
#include "fts/sql/parser.h"
#include "fts/storage/data_generator.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace fts {
namespace {

// Table with one near-unique column ("id") and one low-cardinality column
// ("flag") so the reordering rule has a clear winner.
TablePtr MakeSkewTable(size_t rows = 4000) {
  AlignedVector<int32_t> id(rows), flag(rows);
  for (size_t i = 0; i < rows; ++i) {
    id[i] = static_cast<int32_t>(i);
    flag[i] = static_cast<int32_t>(i % 2);
  }
  TableBuilder builder({{"id", DataType::kInt32},
                        {"flag", DataType::kInt32}});
  FTS_CHECK(builder
                .AddChunk({std::make_shared<ValueColumn<int32_t>>(
                               std::move(id)),
                           std::make_shared<ValueColumn<int32_t>>(
                               std::move(flag))})
                .ok());
  return builder.Build();
}

LqpNodePtr ParseAndBuild(const std::string& sql, TablePtr table) {
  const auto statement = ParseSelect(sql);
  FTS_CHECK(statement.ok());
  auto lqp = BuildLqp(*statement, statement->table, std::move(table));
  FTS_CHECK(lqp.ok());
  return *lqp;
}

std::vector<LqpNodeKind> ChainKinds(const LqpNodePtr& root) {
  std::vector<LqpNodeKind> kinds;
  for (LqpNode* node = root.get(); node != nullptr;
       node = node->child().get()) {
    kinds.push_back(node->kind());
  }
  return kinds;
}

TEST(LqpBuildTest, CountQueryShape) {
  const auto lqp = ParseAndBuild(
      "SELECT COUNT(*) FROM t WHERE id = 5 AND flag = 1", MakeSkewTable());
  EXPECT_EQ(ChainKinds(lqp),
            (std::vector<LqpNodeKind>{
                LqpNodeKind::kAggregate, LqpNodeKind::kPredicate,
                LqpNodeKind::kPredicate, LqpNodeKind::kStoredTable}));
}

TEST(LqpBuildTest, ProjectionQueryShape) {
  const auto lqp =
      ParseAndBuild("SELECT id FROM t WHERE flag = 1", MakeSkewTable());
  EXPECT_EQ(ChainKinds(lqp),
            (std::vector<LqpNodeKind>{LqpNodeKind::kProjection,
                                      LqpNodeKind::kPredicate,
                                      LqpNodeKind::kStoredTable}));
}

TEST(LqpBuildTest, UnknownColumnRejected) {
  const auto statement =
      ParseSelect("SELECT COUNT(*) FROM t WHERE nope = 5");
  ASSERT_TRUE(statement.ok());
  EXPECT_FALSE(BuildLqp(*statement, "t", MakeSkewTable()).ok());
}

TEST(LqpBuildTest, ExplainListsEveryNode) {
  const auto lqp = ParseAndBuild(
      "SELECT COUNT(*) FROM t WHERE id = 5 AND flag = 1", MakeSkewTable());
  const std::string text = ExplainLqp(lqp);
  EXPECT_NE(text.find("Aggregate"), std::string::npos);
  EXPECT_NE(text.find("id = 5"), std::string::npos);
  EXPECT_NE(text.find("flag = 1"), std::string::npos);
  EXPECT_NE(text.find("StoredTable"), std::string::npos);
}

TEST(OptimizerTest, ReorderingPutsSelectivePredicateFirst) {
  // "flag = 1" matches 50%; "id = 123" matches ~1/4000. Built in the
  // order flag-then-id (flag closest to the table), the rule must swap.
  auto lqp = ParseAndBuild(
      "SELECT COUNT(*) FROM t WHERE flag = 1 AND id = 123",
      MakeSkewTable());
  OptimizerOptions options;
  options.enable_fusion = false;
  ASSERT_TRUE(OptimizeLqp(&lqp, options).ok());

  // Root-first: Aggregate, Predicate(flag), Predicate(id), StoredTable —
  // the id predicate must now be nearest the table (evaluated first).
  LqpNode* node = lqp->child().get();
  ASSERT_EQ(node->kind(), LqpNodeKind::kPredicate);
  EXPECT_EQ(static_cast<PredicateNode*>(node)->predicate().column, "flag");
  node = node->child().get();
  ASSERT_EQ(node->kind(), LqpNodeKind::kPredicate);
  EXPECT_EQ(static_cast<PredicateNode*>(node)->predicate().column, "id");
  EXPECT_TRUE(static_cast<PredicateNode*>(node)
                  ->estimated_selectivity()
                  .has_value());
}

TEST(OptimizerTest, SimplificationDropsDuplicates) {
  auto lqp = ParseAndBuild(
      "SELECT COUNT(*) FROM t WHERE id = 5 AND id = 5 AND flag = 1",
      MakeSkewTable());
  PredicateSimplificationRule rule;
  ASSERT_TRUE(rule.Apply(&lqp).ok());
  const auto kinds = ChainKinds(lqp);
  EXPECT_EQ(std::count(kinds.begin(), kinds.end(), LqpNodeKind::kPredicate),
            2);
}

TEST(OptimizerTest, SimplificationSubsumesLooserBounds) {
  auto lqp = ParseAndBuild(
      "SELECT COUNT(*) FROM t WHERE id < 5 AND id < 9 AND id >= 2 "
      "AND id >= 1",
      MakeSkewTable());
  PredicateSimplificationRule rule;
  ASSERT_TRUE(rule.Apply(&lqp).ok());
  std::vector<std::string> remaining;
  for (LqpNode* node = lqp.get(); node != nullptr;
       node = node->child().get()) {
    if (node->kind() == LqpNodeKind::kPredicate) {
      remaining.push_back(
          static_cast<PredicateNode*>(node)->predicate().ToString());
    }
  }
  // Root-first order (execution order is bottom-up): the tight bounds
  // survive, the loose ones are gone.
  EXPECT_EQ(remaining, (std::vector<std::string>{"id >= 2", "id < 5"}));
}

TEST(OptimizerTest, SimplificationEqualitySubsumesRange) {
  auto lqp = ParseAndBuild(
      "SELECT COUNT(*) FROM t WHERE id = 5 AND id < 9 AND id >= 2",
      MakeSkewTable());
  PredicateSimplificationRule rule;
  ASSERT_TRUE(rule.Apply(&lqp).ok());
  const auto kinds = ChainKinds(lqp);
  EXPECT_EQ(std::count(kinds.begin(), kinds.end(), LqpNodeKind::kPredicate),
            1);
}

TEST(OptimizerTest, SimplificationDetectsContradictions) {
  for (const char* where :
       {"id = 5 AND id = 6", "id = 5 AND id < 3", "id = 5 AND id <> 5",
        "id > 9 AND id <= 2", "id > 5 AND id < 5", "id >= 5 AND id < 5"}) {
    auto lqp = ParseAndBuild(
        StrFormat("SELECT COUNT(*) FROM t WHERE %s", where),
        MakeSkewTable());
    PredicateSimplificationRule rule;
    ASSERT_TRUE(rule.Apply(&lqp).ok()) << where;
    const auto kinds = ChainKinds(lqp);
    EXPECT_NE(std::find(kinds.begin(), kinds.end(),
                        LqpNodeKind::kEmptyResult),
              kinds.end())
        << where;
  }
}

TEST(OptimizerTest, SimplificationKeepsSatisfiableChains) {
  for (const char* where :
       {"id >= 5 AND id <= 5", "id > 4 AND id < 6",
        "id = 5 AND id <> 6", "id <> 3 AND id <> 4"}) {
    auto lqp = ParseAndBuild(
        StrFormat("SELECT COUNT(*) FROM t WHERE %s", where),
        MakeSkewTable());
    PredicateSimplificationRule rule;
    ASSERT_TRUE(rule.Apply(&lqp).ok()) << where;
    const auto kinds = ChainKinds(lqp);
    EXPECT_EQ(std::find(kinds.begin(), kinds.end(),
                        LqpNodeKind::kEmptyResult),
              kinds.end())
        << where;
  }
}

TEST(OptimizerTest, ContradictionExecutesToZeroRows) {
  const TablePtr table = MakeSkewTable(100);
  auto lqp = ParseAndBuild(
      "SELECT COUNT(*) FROM t WHERE id = 5 AND id = 6", table);
  ASSERT_TRUE(OptimizeLqp(&lqp).ok());
  const auto plan = TranslateLqp(lqp);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty_result);
  const auto result = ExecutePlan(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->count, 0u);
  EXPECT_NE(plan->Explain().find("EmptyResult"), std::string::npos);
}

TEST(OptimizerTest, FusionCollapsesChains) {
  auto lqp = ParseAndBuild(
      "SELECT COUNT(*) FROM t WHERE id = 5 AND flag = 1 AND id < 100",
      MakeSkewTable());
  ASSERT_TRUE(OptimizeLqp(&lqp).ok());
  const auto kinds = ChainKinds(lqp);
  EXPECT_EQ(kinds, (std::vector<LqpNodeKind>{LqpNodeKind::kAggregate,
                                             LqpNodeKind::kFusedScan,
                                             LqpNodeKind::kStoredTable}));
  // The fused node carries the surviving predicates (simplification
  // subsumed "id < 100" under "id = 5"), execution order first.
  for (LqpNode* node = lqp.get(); node != nullptr;
       node = node->child().get()) {
    if (node->kind() != LqpNodeKind::kFusedScan) continue;
    const auto& predicates =
        static_cast<FusedScanNode*>(node)->predicates();
    ASSERT_EQ(predicates.size(), 2u);
    EXPECT_EQ(predicates[0].ToString(), "id = 5");
    EXPECT_EQ(predicates[1].ToString(), "flag = 1");
  }
}

TEST(OptimizerTest, SinglePredicateNotFused) {
  auto lqp = ParseAndBuild("SELECT COUNT(*) FROM t WHERE id = 5",
                           MakeSkewTable());
  ASSERT_TRUE(OptimizeLqp(&lqp).ok());
  const auto kinds = ChainKinds(lqp);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), LqpNodeKind::kPredicate),
            kinds.end());
  EXPECT_EQ(std::find(kinds.begin(), kinds.end(), LqpNodeKind::kFusedScan),
            kinds.end());
}

TEST(OptimizerTest, PushdownMovesPredicateBelowProjection) {
  // Hand-built pathological tree: Predicate above Projection.
  const TablePtr table = MakeSkewTable();
  auto stored = std::make_shared<StoredTableNode>("t", table);
  auto projection = std::make_shared<ProjectionNode>(
      std::vector<std::string>{"id", "flag"}, false);
  projection->set_child(stored);
  auto predicate = std::make_shared<PredicateNode>(
      AstPredicate{"flag", CompareOp::kEq, Value(1)});
  predicate->set_child(projection);
  LqpNodePtr root = predicate;

  PredicatePushdownRule rule;
  ASSERT_TRUE(rule.Apply(&root).ok());
  EXPECT_EQ(ChainKinds(root),
            (std::vector<LqpNodeKind>{LqpNodeKind::kProjection,
                                      LqpNodeKind::kPredicate,
                                      LqpNodeKind::kStoredTable}));
}

TEST(TranslatorTest, FusedPlanHasOneStep) {
  auto lqp = ParseAndBuild(
      "SELECT COUNT(*) FROM t WHERE id = 5 AND flag = 1", MakeSkewTable());
  ASSERT_TRUE(OptimizeLqp(&lqp).ok());
  TranslatorOptions options;
  options.engine = ScanEngine::kScalarFused;
  const auto plan = TranslateLqp(lqp, options);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->scan_steps.size(), 1u);
  EXPECT_EQ(plan->scan_steps[0].spec.predicates.size(), 2u);
  EXPECT_EQ(plan->output, PhysicalPlan::Output::kCountStar);
}

TEST(TranslatorTest, UnfusedPlanHasStepPerPredicate) {
  auto lqp = ParseAndBuild(
      "SELECT COUNT(*) FROM t WHERE id = 5 AND flag = 1", MakeSkewTable());
  OptimizerOptions optimizer_options;
  optimizer_options.enable_fusion = false;
  ASSERT_TRUE(OptimizeLqp(&lqp, optimizer_options).ok());
  TranslatorOptions options;
  options.engine = ScanEngine::kSisdNoVec;
  const auto plan = TranslateLqp(lqp, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan_steps.size(), 2u);
  // Execution order: most selective (id) first.
  EXPECT_EQ(plan->scan_steps[0].spec.predicates[0].column, "id");
}

TEST(TranslatorTest, SelectStarResolvesAllColumns) {
  auto lqp = ParseAndBuild("SELECT * FROM t WHERE id < 3", MakeSkewTable());
  const auto plan = TranslateLqp(lqp);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->projection_names,
            (std::vector<std::string>{"id", "flag"}));
  EXPECT_EQ(plan->projection_indexes, (std::vector<size_t>{0, 1}));
}

TEST(ExecutePlanTest, CountAndProjectAgree) {
  const TablePtr table = MakeSkewTable(1000);
  auto count_lqp = ParseAndBuild(
      "SELECT COUNT(*) FROM t WHERE flag = 1 AND id < 100", table);
  ASSERT_TRUE(OptimizeLqp(&count_lqp).ok());
  TranslatorOptions options;
  options.engine = ScanEngine::kScalarFused;
  const auto count_plan = TranslateLqp(count_lqp, options);
  ASSERT_TRUE(count_plan.ok());
  const auto count_result = ExecutePlan(*count_plan);
  ASSERT_TRUE(count_result.ok());
  EXPECT_EQ(*count_result->count, 50u);  // Odd ids below 100.

  auto project_lqp =
      ParseAndBuild("SELECT id FROM t WHERE flag = 1 AND id < 100", table);
  ASSERT_TRUE(OptimizeLqp(&project_lqp).ok());
  const auto project_plan = TranslateLqp(project_lqp, options);
  ASSERT_TRUE(project_plan.ok());
  const auto project_result = ExecutePlan(*project_plan);
  ASSERT_TRUE(project_result.ok());
  ASSERT_EQ(project_result->RowCountOut(), 50u);
  EXPECT_EQ(ValueAs<int>(project_result->ValueAt(0, 0)), 1);
  EXPECT_EQ(ValueAs<int>(project_result->ValueAt(49, 0)), 99);
}

TEST(ExecutePlanTest, MultiStepRefinementMatchesFused) {
  const TablePtr table = MakeSkewTable(2000);
  for (const bool fused : {true, false}) {
    auto lqp = ParseAndBuild(
        "SELECT COUNT(*) FROM t WHERE flag = 0 AND id >= 100 AND id < 200",
        table);
    OptimizerOptions optimizer_options;
    optimizer_options.enable_fusion = fused;
    ASSERT_TRUE(OptimizeLqp(&lqp, optimizer_options).ok());
    TranslatorOptions options;
    options.engine =
        fused ? ScanEngine::kScalarFused : ScanEngine::kSisdAutoVec;
    const auto plan = TranslateLqp(lqp, options);
    ASSERT_TRUE(plan.ok());
    const auto result = ExecutePlan(*plan);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result->count, 50u) << "fused=" << fused;
  }
}

// Regression: a refine step whose predicate lands on an RLE/delta column
// carries it in ChunkPlan::compressed, not ChunkPlan::stages. RefineMatches
// used to consult only `stages`, so the conjunct was silently dropped and
// non-fused plans over-counted.
TEST(ExecutePlanTest, MultiStepRefinementEvaluatesCompressedStages) {
  constexpr size_t kRows = 2000;
  TableBuilder builder(
      {{"id", DataType::kInt64}, {"flag", DataType::kInt64}},
      /*target_chunk_size=*/512);
  builder.SetEncoding(0, ColumnEncoding::kDelta);
  builder.SetEncoding(1, ColumnEncoding::kRle);
  for (size_t i = 0; i < kRows; ++i) {
    FTS_CHECK(builder
                  .AppendRow({Value(static_cast<int64_t>(i)),
                              Value(static_cast<int64_t>(i % 2))})
                  .ok());
  }
  const TablePtr table = builder.Build();

  for (const bool fused : {true, false}) {
    auto lqp = ParseAndBuild(
        "SELECT COUNT(*) FROM t WHERE flag = 0 AND id >= 100 AND id < 200",
        table);
    OptimizerOptions optimizer_options;
    optimizer_options.enable_fusion = fused;
    ASSERT_TRUE(OptimizeLqp(&lqp, optimizer_options).ok());
    TranslatorOptions options;
    options.engine =
        fused ? ScanEngine::kScalarFused : ScanEngine::kSisdNoVec;
    const auto plan = TranslateLqp(lqp, options);
    ASSERT_TRUE(plan.ok());
    const auto result = ExecutePlan(*plan);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result->count, 50u) << "fused=" << fused;
  }
}

TEST(ExecutePlanTest, NoPredicates) {
  const TablePtr table = MakeSkewTable(123);
  auto lqp = ParseAndBuild("SELECT COUNT(*) FROM t", table);
  const auto plan = TranslateLqp(lqp);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->scan_steps.empty());
  const auto result = ExecutePlan(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->count, 123u);
}

}  // namespace
}  // namespace fts
