#include <gtest/gtest.h>

#include "fts/common/cpu_info.h"
#include "fts/common/fault_injection.h"
#include "fts/jit/jit_cache.h"
#include "fts/jit/jit_scan_engine.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/data_generator.h"
#include "fts/storage/table_builder.h"

namespace fts {
namespace {

// These tests compile real code through the system compiler; they are the
// slowest in the suite but cover the paper's Section V pipeline
// end-to-end.
class JitEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!GetCpuFeatures().HasFusedScanAvx512()) {
      GTEST_SKIP() << "AVX-512 not available";
    }
  }
};

// Some assertions below (exact cache stats, specific compiler error
// messages) only hold when no external fault is injected; the correctness
// tests stay active because the engine's degradation ladder keeps results
// identical under faults.
#define FTS_SKIP_IF_FAULTS_ARMED()                                        \
  if (FaultInjection::Instance().AnyArmed()) {                            \
    GTEST_SKIP() << "assertions not valid with FTS_FAULT armed";          \
  }

ScanSpec TwoPredicateSpec(const GeneratedScanTable& generated) {
  ScanSpec spec;
  spec.predicates = {
      {"c0", CompareOp::kEq, Value(generated.search_values[0])},
      {"c1", CompareOp::kEq, Value(generated.search_values[1])}};
  return spec;
}

TEST_F(JitEngineTest, MatchesGroundTruthAllWidths) {
  ScanTableOptions options;
  options.rows = 20000;
  options.selectivities = {0.05, 0.5};
  options.seed = 41;
  const GeneratedScanTable generated = MakeScanTable(options);

  for (const int width : {128, 256, 512}) {
    JitCache cache;
    JitScanEngine engine(width, &cache);
    const auto matches =
        engine.Execute(generated.table, TwoPredicateSpec(generated));
    ASSERT_TRUE(matches.ok()) << matches.status().ToString();
    EXPECT_EQ(matches->TotalMatches(), generated.stage_matches.back())
        << "width " << width;
    for (const ChunkMatches& chunk : matches->chunks) {
      for (const uint32_t pos : chunk.positions) {
        ASSERT_TRUE(generated.final_mask[pos]);
      }
    }
  }
}

TEST_F(JitEngineTest, AgreesWithStaticKernelOnChunkedDictionaryTable) {
  ScanTableOptions options;
  options.rows = 15000;
  options.selectivities = {0.1, 0.5};
  options.seed = 43;
  options.chunk_size = 4096;
  options.dictionary_encode = true;
  const GeneratedScanTable generated = MakeScanTable(options);
  const ScanSpec spec = TwoPredicateSpec(generated);

  JitScanEngine engine(512);
  const auto jit = engine.Execute(generated.table, spec);
  ASSERT_TRUE(jit.ok()) << jit.status().ToString();
  const auto reference =
      ExecuteScan(generated.table, spec, ScanEngine::kScalarFused);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(jit->chunks.size(), reference->chunks.size());
  for (size_t c = 0; c < jit->chunks.size(); ++c) {
    EXPECT_EQ(jit->chunks[c].positions, reference->chunks[c].positions);
  }
}

TEST_F(JitEngineTest, CacheHitsAcrossQueriesWithSameShape) {
  FTS_SKIP_IF_FAULTS_ARMED();
  JitCache cache;
  JitScanEngine engine(512, &cache);

  ScanTableOptions options;
  options.rows = 1000;
  options.selectivities = {0.5, 0.5};
  const GeneratedScanTable generated = MakeScanTable(options);

  ASSERT_TRUE(engine.Execute(generated.table,
                             TwoPredicateSpec(generated)).ok());
  EXPECT_EQ(cache.stats().misses, 1u);

  // Same shape, different values: must be a cache hit.
  ScanSpec other = TwoPredicateSpec(generated);
  other.predicates[0].value = Value(12345);
  ASSERT_TRUE(engine.Execute(generated.table, other).ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_GE(cache.stats().hits, 1u);

  // Different comparator: new signature, new compile.
  other.predicates[0].op = CompareOp::kLt;
  ASSERT_TRUE(engine.Execute(generated.table, other).ok());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(JitEngineTest, CompilerFailureSurfacesAsStatus) {
  JitCompilerOptions options;
  options.compiler = "/nonexistent/compiler";
  JitCompiler compiler(options);
  const auto result = compiler.Compile("int x;", "x");
  ASSERT_FALSE(result.ok());
}

TEST_F(JitEngineTest, BadSourceSurfacesCompilerLog) {
  FTS_SKIP_IF_FAULTS_ARMED();
  JitCompiler compiler;
  const auto result = compiler.Compile("this is not C++", "foo");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("error"), std::string::npos);
}

TEST_F(JitEngineTest, MissingSymbolFails) {
  FTS_SKIP_IF_FAULTS_ARMED();
  JitCompiler compiler;
  const auto result =
      compiler.Compile("extern \"C\" int present() { return 1; }",
                       "absent");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("absent"), std::string::npos);
}

TEST_F(JitEngineTest, CountOnlyOperatorMatchesMaterializingOne) {
  FTS_SKIP_IF_FAULTS_ARMED();
  ScanTableOptions options;
  options.rows = 30000;
  options.selectivities = {0.2, 0.5};
  options.seed = 47;
  options.chunk_size = 7000;  // Several chunks, ragged tail.
  const GeneratedScanTable generated = MakeScanTable(options);

  JitCache cache;
  JitScanEngine engine(512, &cache);
  const ScanSpec spec = TwoPredicateSpec(generated);
  const auto count = engine.ExecuteCount(generated.table, spec);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, generated.stage_matches.back());

  // The count-only signature is distinct from the materializing one.
  const auto matches = engine.Execute(generated.table, spec);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->TotalMatches(), *count);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(JitEngineTest, BitPackedTableEndToEnd) {
  // Bit-packed columns flow through signature -> codegen -> compiled
  // operator; results must match the scalar engine.
  Xoshiro256 rng(321);
  AlignedVector<int32_t> a_values, b_values;
  for (int i = 0; i < 20000; ++i) {
    a_values.push_back(static_cast<int32_t>(rng.NextBounded(100)));
    b_values.push_back(static_cast<int32_t>(rng.NextBounded(1000)));
  }
  TableBuilder builder({{"a", DataType::kInt32}, {"b", DataType::kInt32}});
  FTS_CHECK(builder
                .AddChunk({std::make_shared<BitPackedColumn<int32_t>>(
                               BitPackedColumn<int32_t>::FromValues(
                                   a_values)),
                           std::make_shared<BitPackedColumn<int32_t>>(
                               BitPackedColumn<int32_t>::FromValues(
                                   b_values))})
                .ok());
  const TablePtr table = builder.Build();

  ScanSpec spec;
  spec.predicates = {{"a", CompareOp::kLt, Value(30)},
                     {"b", CompareOp::kGe, Value(500)}};
  const auto reference = ExecuteScan(table, spec, ScanEngine::kScalarFused);
  ASSERT_TRUE(reference.ok());

  JitScanEngine engine(512);
  const auto jit = engine.Execute(table, spec);
  ASSERT_TRUE(jit.ok()) << jit.status().ToString();
  ASSERT_EQ(jit->chunks.size(), reference->chunks.size());
  EXPECT_EQ(jit->chunks[0].positions, reference->chunks[0].positions);
  EXPECT_GT(jit->TotalMatches(), 0u);
}

TEST_F(JitEngineTest, GeneratedSisdOperatorAlsoRuns) {
  FTS_SKIP_IF_FAULTS_ARMED();
  // The generated data-centric SISD operator (Section V discusses the JIT
  // emitting either form) must produce the same matches.
  JitScanSignature signature;
  signature.stages = {{ScanElementType::kI32, CompareOp::kEq},
                      {ScanElementType::kI32, CompareOp::kEq}};
  const auto source = GenerateSisdScanSource(signature);
  ASSERT_TRUE(source.ok());
  JitCompiler compiler;
  const auto module = compiler.Compile(*source, kJitScanSymbol);
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  const auto fn =
      reinterpret_cast<JitScanFn>((*module)->symbol_address());

  AlignedVector<int32_t> a = {5, 1, 5, 5}, b = {2, 2, 3, 2};
  const void* columns[2] = {a.data(), b.data()};
  alignas(8) unsigned char values[16] = {};
  const int32_t v0 = 5, v1 = 2;
  __builtin_memcpy(values, &v0, 4);
  __builtin_memcpy(values + 8, &v1, 4);
  uint32_t out[20];
  ASSERT_EQ(fn(columns, values, 4, out), 2u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 3u);
}

}  // namespace
}  // namespace fts
