#include <gtest/gtest.h>

#include "fts/common/random.h"
#include "fts/scan/sisd_scan.h"
#include "fts/simd/kernels_scalar.h"
#include "fts/storage/data_generator.h"

namespace fts {
namespace {

// Both SISD build flavors must agree with the scalar fused reference for
// counts and positions across types, ops, and chain lengths.
struct Workload {
  std::vector<AlignedVector<int32_t>> i32;
  std::vector<AlignedVector<double>> f64;
  std::vector<ScanStage> stages;
};

Workload MakeWorkload(size_t rows, size_t num_stages, bool mixed,
                      uint64_t seed) {
  Workload workload;
  Xoshiro256 rng(seed);
  for (size_t s = 0; s < num_stages; ++s) {
    ScanStage stage;
    stage.op = static_cast<CompareOp>(
        kAllCompareOps[rng.NextBounded(6)]);
    if (mixed && (s % 2 == 1)) {
      AlignedVector<double> data(rows);
      for (auto& v : data) {
        v = static_cast<double>(static_cast<int64_t>(rng.NextBounded(10)));
      }
      workload.f64.push_back(std::move(data));
      stage.data = workload.f64.back().data();
      stage.type = ScanElementType::kF64;
      stage.value.f64 = static_cast<double>(rng.NextBounded(10));
    } else {
      AlignedVector<int32_t> data(rows);
      for (auto& v : data) v = static_cast<int32_t>(rng.NextBounded(10));
      workload.i32.push_back(std::move(data));
      stage.data = workload.i32.back().data();
      stage.type = ScanElementType::kI32;
      stage.value.i32 = static_cast<int32_t>(rng.NextBounded(10));
    }
    workload.stages.push_back(stage);
  }
  // Homogeneous chains must share one op to hit the tight path.
  if (!mixed) {
    for (auto& stage : workload.stages) stage.op = workload.stages[0].op;
  }
  return workload;
}

class SisdAgreementTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, bool>> {};

TEST_P(SisdAgreementTest, CountsAgreeWithReference) {
  const auto [rows, num_stages, mixed] = GetParam();
  const Workload workload =
      MakeWorkload(rows, num_stages, mixed, rows * 31 + num_stages);
  const size_t expected = FusedScanScalarCount(
      workload.stages.data(), workload.stages.size(), rows);
  EXPECT_EQ(SisdScanNoVecCount(workload.stages.data(),
                               workload.stages.size(), rows),
            expected);
  EXPECT_EQ(SisdScanAutoVecCount(workload.stages.data(),
                                 workload.stages.size(), rows),
            expected);
}

TEST_P(SisdAgreementTest, PositionsAgreeWithReference) {
  const auto [rows, num_stages, mixed] = GetParam();
  const Workload workload =
      MakeWorkload(rows, num_stages, mixed, rows * 37 + num_stages);
  std::vector<uint32_t> expected(rows + kScanOutputSlack);
  std::vector<uint32_t> novec(rows + kScanOutputSlack);
  std::vector<uint32_t> autovec(rows + kScanOutputSlack);
  const size_t n = FusedScanScalar(workload.stages.data(),
                                   workload.stages.size(), rows,
                                   expected.data());
  ASSERT_EQ(SisdScanNoVecCollect(workload.stages.data(),
                                 workload.stages.size(), rows, novec.data()),
            n);
  ASSERT_EQ(
      SisdScanAutoVecCollect(workload.stages.data(),
                             workload.stages.size(), rows, autovec.data()),
      n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(novec[i], expected[i]);
    ASSERT_EQ(autovec[i], expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SisdAgreementTest,
    ::testing::Combine(::testing::Values<size_t>(0, 1, 17, 1000, 4096),
                       ::testing::Values<size_t>(1, 2, 3, 5, 8),
                       ::testing::Bool()));

TEST(SisdScanTest, EmptyInput) {
  AlignedVector<int32_t> data = {1};
  ScanStage stage{data.data(), ScanElementType::kI32, CompareOp::kEq, {}};
  stage.value.i32 = 1;
  EXPECT_EQ(SisdScanNoVecCount(&stage, 1, 0), 0u);
}

TEST(SisdScanTest, UnsignedBoundary) {
  // u32 comparisons around the sign bit must be unsigned.
  AlignedVector<uint32_t> data = {0u, 1u, 0x7FFFFFFFu, 0x80000000u,
                                  0xFFFFFFFFu};
  ScanStage stage{data.data(), ScanElementType::kU32, CompareOp::kGt, {}};
  stage.value.u32 = 0x7FFFFFFFu;
  EXPECT_EQ(SisdScanNoVecCount(&stage, 1, data.size()), 2u);
  EXPECT_EQ(SisdScanAutoVecCount(&stage, 1, data.size()), 2u);
}

}  // namespace
}  // namespace fts
