// Projection differential fuzzer (DESIGN.md §16): the late-materialized
// columnar pipeline must be byte-identical to the tuple-at-a-time
// reference materializer for every gather engine, encoding mix, and
// thread count — including ORDER BY, LIMIT, and the top-K path that
// gathers only the winners.
//
// Two layers are diffed:
//   1. Kernel layer: ProjectionGatherer + ExecuteParallelGather at
//      1/2/4 threads against boxed Table::GetValue rows, on random
//      1-8 column tables drawing all six encodings.
//   2. Plan layer: ExecutePlan with a fused engine (columnar path)
//      against the same plan under FTS_GATHER=0 (reference path),
//      rendered via ToString for cell-exact comparison, with random
//      ORDER BY direction and LIMIT (exercising full-sort permutation,
//      truncation, and top-K selection).
//
// Every failure carries the seed; FTS_TEST_SEED=<seed> replays it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "fts/common/cpu_info.h"
#include "fts/common/random.h"
#include "fts/common/string_util.h"
#include "fts/exec/parallel_project.h"
#include "fts/plan/physical_plan.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/table_builder.h"
#include "test_util.h"

namespace fts {
namespace {

constexpr const char* kBinary = "projection_differential_test";

// Survivor-count shapes the gather tails mistreat first, plus sizes that
// leave partial lane groups in every kernel.
constexpr size_t kAwkwardRows[] = {1, 15, 16, 17, 33, 64, 65,
                                   257, 1000, 2048};

struct FuzzCase {
  TablePtr table;
  std::vector<size_t> projection;
  std::vector<std::string> names;
  ScanSpec spec;
};

FuzzCase MakeCase(uint64_t seed) {
  Xoshiro256 rng(seed);
  FuzzCase result;

  const size_t rows = rng.NextBounded(2) == 0
                          ? kAwkwardRows[rng.NextBounded(
                                std::size(kAwkwardRows))]
                          : rng.NextBounded(5000) + 1;
  const size_t num_columns = rng.NextBounded(8) + 1;
  constexpr DataType kTypes[] = {DataType::kInt32,  DataType::kInt64,
                                 DataType::kUInt32, DataType::kUInt64,
                                 DataType::kFloat32, DataType::kFloat64,
                                 DataType::kInt16};
  constexpr ColumnEncoding kEncodings[] = {
      ColumnEncoding::kPlain,     ColumnEncoding::kDictionary,
      ColumnEncoding::kBitPacked, ColumnEncoding::kRle,
      ColumnEncoding::kFor,       ColumnEncoding::kDelta};

  std::vector<ColumnDefinition> schema;
  for (size_t c = 0; c < num_columns; ++c) {
    schema.push_back(
        {StrFormat("c%zu", c), kTypes[rng.NextBounded(std::size(kTypes))]});
  }
  const size_t chunk_size =
      rng.NextBounded(2) == 0 ? rng.NextBounded(rows) + 1 : rows;
  TableBuilder builder(schema, chunk_size);
  for (size_t c = 0; c < num_columns; ++c) {
    builder.SetEncoding(
        c, kEncodings[rng.NextBounded(std::size(kEncodings))]);
  }
  std::vector<Value> row(num_columns, Value(int32_t{0}));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < num_columns; ++c) {
      // Clustered small values: exact in every type, RLE-friendly, and
      // selective enough that predicates keep a mid-size survivor set.
      const int64_t v = static_cast<int64_t>(rng.NextBounded(40)) - 20;
      switch (schema[c].type) {
        case DataType::kInt32:
          row[c] = Value(static_cast<int32_t>(v));
          break;
        case DataType::kInt64:
          row[c] = Value(v * 1000003);
          break;
        case DataType::kUInt32:
          row[c] = Value(static_cast<uint32_t>(v + 20));
          break;
        case DataType::kUInt64:
          row[c] = Value(static_cast<uint64_t>(v + 20));
          break;
        case DataType::kFloat32:
          row[c] = Value(static_cast<float>(v) / 2.0f);
          break;
        case DataType::kFloat64:
          row[c] = Value(static_cast<double>(v) / 2.0);
          break;
        case DataType::kInt16:
          row[c] = Value(static_cast<int16_t>(v));
          break;
        default:
          row[c] = Value(static_cast<int32_t>(v));
      }
    }
    FTS_CHECK(builder.AppendRow(row).ok());
  }
  result.table = builder.Build();

  // Project a random non-empty subset (with the occasional duplicate —
  // SELECT a, a is legal and must gather twice).
  const size_t width = rng.NextBounded(num_columns) + 1;
  for (size_t i = 0; i < width; ++i) {
    const size_t column = rng.NextBounded(num_columns);
    result.projection.push_back(column);
    result.names.push_back(schema[column].name);
  }

  // 1-2 predicates on random columns; ops that keep survivor sets mixed.
  const size_t num_predicates = rng.NextBounded(2) + 1;
  constexpr CompareOp kOps[] = {CompareOp::kLt, CompareOp::kLe,
                                CompareOp::kGt, CompareOp::kGe,
                                CompareOp::kNe};
  for (size_t p = 0; p < num_predicates; ++p) {
    const size_t column = rng.NextBounded(num_columns);
    PredicateSpec predicate;
    predicate.column = schema[column].name;
    predicate.op = kOps[rng.NextBounded(std::size(kOps))];
    const int64_t v = static_cast<int64_t>(rng.NextBounded(20)) - 10;
    switch (schema[column].type) {
      case DataType::kInt32:
        predicate.value = Value(static_cast<int32_t>(v));
        break;
      case DataType::kInt64:
        predicate.value = Value(v * 1000003);
        break;
      case DataType::kUInt32:
        predicate.value = Value(static_cast<uint32_t>(v + 10));
        break;
      case DataType::kUInt64:
        predicate.value = Value(static_cast<uint64_t>(v + 10));
        break;
      case DataType::kFloat32:
        predicate.value = Value(static_cast<float>(v) / 2.0f);
        break;
      case DataType::kFloat64:
        predicate.value = Value(static_cast<double>(v) / 2.0);
        break;
      case DataType::kInt16:
        predicate.value = Value(static_cast<int16_t>(v));
        break;
      default:
        predicate.value = Value(static_cast<int32_t>(v));
    }
    result.spec.predicates.push_back(predicate);
  }
  return result;
}

// Boxed tuple-at-a-time reference over the same matches.
std::vector<std::vector<Value>> ReferenceRows(
    const TablePtr& table, const std::vector<size_t>& projection,
    const TableMatches& matches) {
  std::vector<std::vector<Value>> rows;
  for (const ChunkMatches& chunk : matches.chunks) {
    for (const ChunkOffset pos : chunk.positions) {
      std::vector<Value> row;
      row.reserve(projection.size());
      for (const size_t column : projection) {
        row.push_back(table->GetValue(column, RowId{chunk.chunk_id, pos}));
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

class ProjectionDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

// Kernel layer: every gather engine x thread count reproduces the boxed
// reference cell-for-cell.
TEST_P(ProjectionDifferentialTest, GatherMatchesBoxedReference) {
  const uint64_t seed = GetParam();
  const FuzzCase fuzz = MakeCase(seed);
  const std::string replay = testing::ReplayCommand(kBinary, seed);

  const auto prepared = TableScanner::Prepare(fuzz.table, fuzz.spec);
  // Non-representable literal for the column type: rejection behavior is
  // differential_test's turf; nothing to project here.
  if (!prepared.ok()) return;
  const auto matches = prepared->Execute(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(matches.ok()) << replay;
  const std::vector<std::vector<Value>> reference =
      ReferenceRows(fuzz.table, fuzz.projection, *matches);

  const auto gatherer =
      ProjectionGatherer::Prepare(fuzz.table, fuzz.projection);
  ASSERT_TRUE(gatherer.ok()) << replay;

  std::vector<FusedKernelKind> kernels = {FusedKernelKind::kScalar};
  if (GetCpuFeatures().avx2) kernels.push_back(FusedKernelKind::kAvx2_128);
  if (GetCpuFeatures().HasFusedScanAvx512()) {
    kernels.push_back(FusedKernelKind::kAvx512_512);
  }
  for (const FusedKernelKind kind : kernels) {
    for (const int threads : {1, 2, 4}) {
      ParallelProjectOptions options;
      options.kernel = kind;
      options.threads = threads;
      ColumnarResult out;
      GatherStats stats;
      ASSERT_TRUE(ExecuteParallelGather(*gatherer, *matches, fuzz.names,
                                        options, &out, &stats)
                      .ok())
          << replay;
      ASSERT_EQ(out.row_count(), reference.size())
          << FusedKernelKindToString(kind) << " threads=" << threads
          << "\n" << replay;
      for (size_t r = 0; r < reference.size(); ++r) {
        for (size_t c = 0; c < fuzz.projection.size(); ++c) {
          ASSERT_EQ(ValueToString(out.ValueAt(r, c)),
                    ValueToString(reference[r][c]))
              << FusedKernelKindToString(kind) << " threads=" << threads
              << " row=" << r << " col=" << c << "\n" << replay;
        }
      }
      // Every output cell is attributed to exactly one encoding class.
      uint64_t attributed = 0;
      for (size_t e = 0; e < 6; ++e) attributed += stats.rows_by_encoding[e];
      EXPECT_EQ(attributed, reference.size() * fuzz.projection.size())
          << replay;
      EXPECT_EQ(stats.kernel_rows + stats.typed_rows, attributed) << replay;
    }
  }
}

// Plan layer: ExecutePlan's columnar pipeline (fused engines, JIT) against
// the reference path forced by FTS_GATHER=0 — including random ORDER BY /
// LIMIT, whose top-K path gathers only the winners.
TEST_P(ProjectionDifferentialTest, PlanPipelineMatchesReferencePath) {
  const uint64_t seed = GetParam();
  const FuzzCase fuzz = MakeCase(seed);
  const std::string replay = testing::ReplayCommand(kBinary, seed);
  Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ull);

  PhysicalPlan plan;
  plan.table = fuzz.table;
  plan.table_name = "fuzz";
  PhysicalPlan::ScanStep step;
  step.spec = fuzz.spec;
  step.engine = ScanEngine::kScalarFused;
  plan.scan_steps.push_back(step);
  plan.output = PhysicalPlan::Output::kProject;
  plan.projection_indexes = fuzz.projection;
  plan.projection_names = fuzz.names;
  if (rng.NextBounded(2) == 0) {
    plan.order_by_index = rng.NextBounded(fuzz.projection.size());
    plan.order_descending = rng.NextBounded(2) == 0;
  }
  if (rng.NextBounded(2) == 0) {
    plan.limit = rng.NextBounded(50);
  }

  std::vector<ScanEngine> engines = {ScanEngine::kScalarFused};
  if (GetCpuFeatures().avx2) engines.push_back(ScanEngine::kAvx2Fused128);
  if (GetCpuFeatures().HasFusedScanAvx512()) {
    engines.push_back(ScanEngine::kAvx512Fused512);
#if !defined(__SANITIZE_THREAD__)
    // TSan cannot follow dlopen'd JIT-compiled code; the JIT arm runs in
    // the plain tier-1 configuration only.
    engines.push_back(ScanEngine::kJit);
#endif
  }

  // Reference: same plan, gather disabled (tuple-at-a-time path).
  setenv("FTS_GATHER", "0", 1);
  const auto reference = ExecutePlan(plan);
  unsetenv("FTS_GATHER");
  // Non-representable literal: both paths must reject identically.
  if (!reference.ok()) {
    const auto got = ExecutePlan(plan);
    EXPECT_FALSE(got.ok()) << replay;
    return;
  }
  ASSERT_FALSE(reference->columnar_valid) << replay;
  const std::string reference_text =
      reference->ToString(reference->RowCountOut());

  for (const ScanEngine engine : engines) {
    plan.scan_steps[0].engine = engine;
    for (const int threads : {1, 2, 4}) {
      plan.threads = threads;
      const auto got = ExecutePlan(plan);
      ASSERT_TRUE(got.ok())
          << ScanEngineToString(engine) << ": " << got.status().ToString()
          << "\n" << replay;
      EXPECT_TRUE(got->columnar_valid) << replay;
      EXPECT_EQ(got->RowCountOut(), reference->RowCountOut())
          << ScanEngineToString(engine) << " threads=" << threads << "\n"
          << replay;
      EXPECT_EQ(got->ToString(got->RowCountOut()), reference_text)
          << ScanEngineToString(engine) << " threads=" << threads << "\n"
          << replay;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionDifferentialTest,
                         ::testing::ValuesIn(testing::SeedRange(1, 40)));

}  // namespace
}  // namespace fts
