// Tests for EXPLAIN / EXPLAIN ANALYZE: parser flags, plan-only routing,
// and the annotated plan's agreement with the query's ExecutionReport.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "fts/common/string_util.h"
#include "fts/db/database.h"
#include "fts/sql/parser.h"
#include "fts/storage/data_generator.h"

namespace fts {
namespace {

// Queries without an explicit engine run adaptively, and the first one in
// the process calibrates the cost model; keep that run short.
const bool kFastCalibration = [] {
  setenv("FTS_CALIBRATE_FAST", "1", 1);
  return true;
}();

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScanTableOptions options;
    options.rows = 50000;
    options.selectivities = {0.1, 0.5};
    options.seed = 314;
    // Multiple chunks so the parallel/pruning annotations have structure.
    options.chunk_size = 10000;
    generated_ = MakeScanTable(options);
    ASSERT_TRUE(db_.RegisterTable("tbl", generated_.table).ok());
  }

  Database db_;
  GeneratedScanTable generated_;
};

TEST(ExplainParserTest, ParsesExplainPrefixes) {
  const auto plain = ParseSelect("SELECT COUNT(*) FROM t WHERE a = 1");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->explain);
  EXPECT_FALSE(plain->analyze);

  const auto explain = ParseSelect("EXPLAIN SELECT COUNT(*) FROM t");
  ASSERT_TRUE(explain.ok());
  EXPECT_TRUE(explain->explain);
  EXPECT_FALSE(explain->analyze);

  const auto analyze =
      ParseSelect("explain analyze SELECT c0 FROM t WHERE a = 1");
  ASSERT_TRUE(analyze.ok());
  EXPECT_TRUE(analyze->explain);
  EXPECT_TRUE(analyze->analyze);
  EXPECT_EQ(analyze->ToString().rfind("EXPLAIN ANALYZE SELECT", 0), 0u);

  // ANALYZE without EXPLAIN is not a statement.
  EXPECT_FALSE(ParseSelect("ANALYZE SELECT COUNT(*) FROM t").ok());
}

TEST_F(ExplainAnalyzeTest, ExplainPlansWithoutExecuting) {
  const auto result =
      db_.Query("EXPLAIN SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->explain_text.empty());
  EXPECT_NE(result->explain_text.find("Logical plan"), std::string::npos);
  EXPECT_NE(result->explain_text.find("Physical plan"), std::string::npos);
  // Nothing executed: no count, no rows, default report.
  EXPECT_FALSE(result->count.has_value());
  EXPECT_EQ(result->matched_rows, 0u);
  EXPECT_TRUE(result->execution_report.attempts.empty());
  // ToString returns the rendered plan verbatim.
  EXPECT_EQ(result->ToString(), result->explain_text);
}

TEST_F(ExplainAnalyzeTest, AnalyzeExecutesAndAnnotates) {
  const std::string sql =
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2";
  const auto result = db_.Query(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExecutionReport& report = result->execution_report;
  const std::string& text = result->explain_text;
  ASSERT_FALSE(text.empty());

  // The query really ran and matches ground truth.
  ASSERT_TRUE(result->count.has_value());
  EXPECT_EQ(*result->count, generated_.stage_matches.back());
  EXPECT_FALSE(report.attempts.empty());

  // The rendered actuals agree with the ExecutionReport, field by field.
  EXPECT_NE(text.find(StrFormat("count=%llu",
                                static_cast<unsigned long long>(
                                    *result->count))),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(StrFormat(
                "rows in=%llu",
                static_cast<unsigned long long>(report.rows_scanned))),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(StrFormat(
                "rows scanned=%llu",
                static_cast<unsigned long long>(report.rows_scanned))),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(StrFormat("chunks=%zu", report.chunks_total)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("executed=" + report.executed.ToString()),
            std::string::npos)
      << text;

  // EXPLAIN ANALYZE collects counters; the source is always labelled,
  // and the Counters line now states what the numbers actually cover
  // (whole query vs first scan step / a subset of morsels).
  EXPECT_NE(report.counters.source, CounterSource::kUnavailable);
  EXPECT_NE(text.find("counters ("), std::string::npos) << text;
  EXPECT_NE(text.find(CounterSourceToString(report.counters.source)),
            std::string::npos)
      << text;
  EXPECT_FALSE(report.counters.coverage.empty());
  EXPECT_NE(text.find(", covers " + report.counters.coverage),
            std::string::npos)
      << text;
  if (report.counters.source == CounterSource::kSimulated) {
    // The gshare replay only models the first scan step; a single-step
    // COUNT(*) plan is therefore full coverage, not partial.
    EXPECT_EQ(report.counters.coverage, "first scan step only");
  }

  // Stage table: the COUNT(*) fast path runs as one fused scan stage
  // whose output is the match count.
  ASSERT_FALSE(report.stages.empty());
  EXPECT_EQ(report.stages.front().rows_in, report.rows_scanned);
  EXPECT_EQ(report.stages.back().rows_out, *result->count);
}

TEST_F(ExplainAnalyzeTest, AnalyzeShowsEstimatedVersusActualRows) {
  const auto result = db_.Query(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExecutionReport& report = result->execution_report;
  const std::string& text = result->explain_text;

  // No explicit engine in the options: the cost model is active and the
  // model may adapt engines per chunk.
  ASSERT_TRUE(report.model_active) << text;
  EXPECT_TRUE(report.adaptive_engines) << text;

  // Every executed stage renders estimated next to actual rows...
  ASSERT_FALSE(report.stages.empty());
  EXPECT_TRUE(report.stages.front().has_estimate);
  EXPECT_NE(text.find(StrFormat(" (est out=%.0f)",
                                report.stages.front().est_rows_out)),
            std::string::npos)
      << text;
  // ... and the CostModel line carries the whole-scan estimate beside the
  // measured match count.
  EXPECT_NE(text.find("CostModel: on"), std::string::npos) << text;
  EXPECT_NE(text.find(StrFormat(
                "est rows=%.0f actual=%llu", report.est_rows,
                static_cast<unsigned long long>(report.rows_matched))),
            std::string::npos)
      << text;
  // The estimate is a real number, not a placeholder.
  EXPECT_GT(report.est_rows, 0.0);
}

TEST_F(ExplainAnalyzeTest, KillSwitchRendersCostModelOff) {
  setenv("FTS_ADAPTIVE", "0", 1);
  const auto result = db_.Query(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2");
  unsetenv("FTS_ADAPTIVE");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->execution_report.model_active);
  EXPECT_NE(result->explain_text.find("CostModel: off"), std::string::npos)
      << result->explain_text;
  // The kill switch changes the annotation, never the answer.
  EXPECT_EQ(*result->count, generated_.stage_matches.back());
}

TEST_F(ExplainAnalyzeTest, PlainQueryCollectsNoCounters) {
  const auto result =
      db_.Query("SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->explain_text.empty());
  // Counter collection is opt-in (the simulator is O(rows)).
  EXPECT_EQ(result->execution_report.counters.source,
            CounterSource::kUnavailable);
}

TEST_F(ExplainAnalyzeTest, AnalyzeProjectionQuery) {
  const auto result = db_.Query(
      "EXPLAIN ANALYZE SELECT c0, c1 FROM tbl WHERE c0 = 5 AND c1 = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string& text = result->explain_text;
  EXPECT_NE(text.find("Project"), std::string::npos) << text;
  EXPECT_NE(text.find(StrFormat(
                "actual rows=%llu",
                static_cast<unsigned long long>(result->matched_rows))),
            std::string::npos)
      << text;
  // Projection results still materialize alongside the annotation.
  EXPECT_EQ(result->RowCountOut(), result->matched_rows);
}

TEST_F(ExplainAnalyzeTest, AnalyzeParallelScanReportsWorkers) {
  Database::QueryOptions options;
  options.threads = 4;
  const auto result = db_.Query(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2",
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExecutionReport& report = result->execution_report;
  EXPECT_EQ(report.worker_count, 4);
  EXPECT_GT(report.morsel_count, 0u);
  const std::string& text = result->explain_text;
  EXPECT_NE(text.find(StrFormat("workers=%d morsels=%zu",
                                report.worker_count, report.morsel_count)),
            std::string::npos)
      << text;
  // Every morsel's engine shows up in the mix annotation.
  EXPECT_NE(text.find("engines={"), std::string::npos) << text;
  EXPECT_EQ(*result->count, generated_.stage_matches.back());

  // Counter coverage is host-dependent (PMU vs gshare replay), but
  // whichever path ran must label itself honestly: hardware numbers on a
  // parallel scan state their morsel/thread coverage and attribute
  // per-engine; the simulator admits it replays the first step only.
  EXPECT_FALSE(report.counters.coverage.empty());
  if (report.counters.source == CounterSource::kHardware) {
    EXPECT_NE(report.counters.coverage.find("morsels"), std::string::npos);
    EXPECT_GT(report.counters.morsels_measurable, 0u);
    EXPECT_GE(report.counters.morsels_measurable,
              report.counters.morsels_covered);
    EXPECT_FALSE(report.engine_counters.empty());
  } else {
    EXPECT_EQ(report.counters.source, CounterSource::kSimulated);
    EXPECT_NE(report.counters.coverage.find("first scan step"),
              std::string::npos);
  }
}

TEST_F(ExplainAnalyzeTest, AnalyzeReportsZoneMapPruning) {
  // c0 is non-negative in generated tables, so c0 = -1 prunes everything.
  const auto result =
      db_.Query("EXPLAIN ANALYZE SELECT COUNT(*) FROM tbl WHERE c0 = -1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExecutionReport& report = result->execution_report;
  EXPECT_EQ(report.chunks_pruned, report.chunks_total);
  EXPECT_EQ(*result->count, 0u);
  EXPECT_NE(result->explain_text.find(
                StrFormat("pruned=%zu", report.chunks_pruned)),
            std::string::npos)
      << result->explain_text;
}

TEST_F(ExplainAnalyzeTest, AnalyzeMatchesPlainQueryResults) {
  const std::string where = " FROM tbl WHERE c0 = 5 AND c1 = 2";
  const auto plain = db_.Query("SELECT COUNT(*)" + where);
  const auto analyzed = db_.Query("EXPLAIN ANALYZE SELECT COUNT(*)" + where);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(*plain->count, *analyzed->count);
  EXPECT_EQ(plain->execution_report.rows_scanned,
            analyzed->execution_report.rows_scanned);
  EXPECT_EQ(plain->execution_report.chunks_total,
            analyzed->execution_report.chunks_total);
}

}  // namespace
}  // namespace fts
