// Tail-handling regressions. The vectorized kernels process 16 (32-bit
// lanes at 512 bits) or 8 rows per iteration and finish the remainder in
// a masked epilogue; the bit-packed unpack path additionally windows the
// code stream through 64-bit loads. This file pins the awkward shapes:
// empty tables, chunks of 1/15/17 rows, chunk tails created by odd chunk
// sizes, and packed code runs that straddle 64-bit word boundaries —
// across every engine, the JIT, and the parallel path.

#include <gtest/gtest.h>

#include <vector>

#include "fts/common/cpu_info.h"
#include "fts/common/string_util.h"
#include "fts/exec/parallel_scan.h"
#include "fts/jit/jit_scan_engine.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/compare_op.h"
#include "fts/storage/table_builder.h"

namespace fts {
namespace {

constexpr ScanEngine kStaticEngines[] = {
    ScanEngine::kSisdNoVec,     ScanEngine::kSisdAutoVec,
    ScanEngine::kScalarFused,   ScanEngine::kAvx2Fused128,
    ScanEngine::kAvx512Fused128, ScanEngine::kAvx512Fused256,
    ScanEngine::kAvx512Fused512, ScanEngine::kBlockwise};

bool JitUsable() {
#if defined(__SANITIZE_THREAD__)
  return false;  // dlopen'd operators are invisible to TSan.
#else
  return GetCpuFeatures().HasFusedScanAvx512();
#endif
}

// Runs `spec` through every available engine (static rungs, JIT when
// usable, and the parallel path at 2 threads) and checks each against the
// SISD reference, position for position.
void ExpectAllEnginesAgree(const TablePtr& table, const ScanSpec& spec,
                           const std::string& what) {
  const auto scanner = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(scanner.ok()) << what << ": " << scanner.status().ToString();
  const auto reference = scanner->Execute(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(reference.ok()) << what;

  const auto check = [&](const TableMatches& got, const std::string& who) {
    ASSERT_EQ(got.chunks.size(), reference->chunks.size()) << what;
    for (size_t i = 0; i < reference->chunks.size(); ++i) {
      ASSERT_EQ(got.chunks[i].positions, reference->chunks[i].positions)
          << what << " engine=" << who << " chunk=" << i;
    }
  };

  for (const ScanEngine engine : kStaticEngines) {
    if (!ScanEngineAvailable(engine)) continue;
    const auto matches = scanner->Execute(engine);
    ASSERT_TRUE(matches.ok())
        << what << " " << ScanEngineToString(engine) << ": "
        << matches.status().ToString();
    check(*matches, ScanEngineToString(engine));
    const auto count = scanner->ExecuteCount(engine);
    ASSERT_TRUE(count.ok());
    uint64_t reference_total = 0;
    for (const auto& chunk : reference->chunks) {
      reference_total += chunk.positions.size();
    }
    EXPECT_EQ(*count, reference_total)
        << what << " " << ScanEngineToString(engine);
  }

  if (JitUsable()) {
    JitScanEngine jit(512);
    const auto matches = jit.Execute(table, spec);
    ASSERT_TRUE(matches.ok()) << what << ": " << matches.status().ToString();
    check(*matches, "jit512");
  }

  ParallelScanOptions options;
  options.requested = {ScanEngine::kScalarFused, 0};
  options.fallback = FallbackPolicy::kStrict;
  options.threads = 2;
  const auto parallel = ExecuteParallelScan(*scanner, options);
  ASSERT_TRUE(parallel.ok()) << what;
  check(*parallel, "parallel");
}

// A single-column int32 table with `rows` rows, values cycling 0..6, cut
// into chunks of `chunk_size` (0 = one chunk).
TablePtr CyclicTable(size_t rows, size_t chunk_size) {
  TableBuilder builder({{"c0", DataType::kInt32}},
                       chunk_size == 0 ? (rows == 0 ? 1 : rows)
                                       : chunk_size);
  for (size_t r = 0; r < rows; ++r) {
    FTS_CHECK(
        builder.AppendRow({Value(static_cast<int32_t>(r % 7))}).ok());
  }
  return builder.Build();
}

ScanSpec LessThanSpec(int32_t bound) {
  ScanSpec spec;
  spec.predicates.push_back({"c0", CompareOp::kLt, Value(bound)});
  return spec;
}

TEST(ScanTailTest, EmptyTableReturnsNoChunks) {
  const TablePtr table = CyclicTable(0, 0);
  ASSERT_EQ(table->chunk_count(), 0u);
  const ScanSpec spec = LessThanSpec(3);

  for (const ScanEngine engine : kStaticEngines) {
    if (!ScanEngineAvailable(engine)) continue;
    const auto matches = ExecuteScan(table, spec, engine);
    ASSERT_TRUE(matches.ok()) << ScanEngineToString(engine);
    EXPECT_TRUE(matches->chunks.empty()) << ScanEngineToString(engine);
    const auto count = ExecuteScanCount(table, spec, engine);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, 0u);
  }
  if (JitUsable()) {
    JitScanEngine jit(512);
    const auto matches = jit.Execute(table, spec);
    ASSERT_TRUE(matches.ok());
    EXPECT_TRUE(matches->chunks.empty());
  }
  const auto scanner = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(scanner.ok());
  ParallelScanOptions options;
  options.requested = {ScanEngine::kScalarFused, 0};
  options.threads = 2;
  const auto parallel = ExecuteParallelScan(*scanner, options);
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(parallel->chunks.empty());
}

TEST(ScanTailTest, SubRegisterRowCounts) {
  // 1, 15, 17 are the canonical off-by-one shapes around the 16-lane
  // width; 0-row chunks cannot be built row-wise, so the empty case lives
  // in EmptyTableReturnsNoChunks above.
  for (const size_t rows : {size_t{1}, size_t{15}, size_t{17}}) {
    ExpectAllEnginesAgree(CyclicTable(rows, 0), LessThanSpec(3),
                          StrFormat("rows=%zu", rows));
    // All rows match / no rows match — the masked epilogue must neither
    // drop nor invent positions.
    ExpectAllEnginesAgree(CyclicTable(rows, 0), LessThanSpec(100),
                          StrFormat("rows=%zu all-match", rows));
    ExpectAllEnginesAgree(CyclicTable(rows, 0), LessThanSpec(-1),
                          StrFormat("rows=%zu none-match", rows));
  }
}

TEST(ScanTailTest, OddChunkTails) {
  // 100 rows in chunks of 17: six full chunks plus a 15-row tail chunk.
  ExpectAllEnginesAgree(CyclicTable(100, 17), LessThanSpec(4),
                        "rows=100 chunk=17");
  // 33 rows in chunks of 16: tail chunk of exactly one row.
  ExpectAllEnginesAgree(CyclicTable(33, 16), LessThanSpec(4),
                        "rows=33 chunk=16");
}

// Bit-packed columns whose code runs cross 64-bit word boundaries. A
// width-w code stream puts code i at bit offset i*w; whenever 64 % w != 0
// some code straddles two words and the kernels' 8-byte window loads must
// reassemble it. Cardinality c gives width ceil(log2(c)).
TEST(ScanTailTest, BitpackedRunsCrossWordBoundaries) {
  struct Shape {
    size_t cardinality;  // -> bit width
    size_t rows;
  };
  // Widths 2, 3, 5, 7 (cardinalities 3, 5, 17, 100); rows straddle the
  // first and second 64-bit word for each width.
  const Shape shapes[] = {{3, 65}, {5, 43}, {5, 64}, {17, 26},
                          {17, 129}, {100, 19}, {100, 127}};
  for (const Shape& shape : shapes) {
    TableBuilder builder({{"c0", DataType::kInt32}}, shape.rows);
    builder.SetBitPacked(0);
    for (size_t r = 0; r < shape.rows; ++r) {
      FTS_CHECK(builder
                    .AppendRow({Value(static_cast<int32_t>(
                        r % shape.cardinality))})
                    .ok());
    }
    const TablePtr table = builder.Build();
    const int32_t mid = static_cast<int32_t>(shape.cardinality / 2);
    for (const CompareOp op : kAllCompareOps) {
      ScanSpec spec;
      spec.predicates.push_back({"c0", op, Value(mid)});
      ExpectAllEnginesAgree(
          table, spec,
          StrFormat("bitpacked card=%zu rows=%zu op=%d", shape.cardinality,
                    shape.rows, static_cast<int>(op)));
    }
  }
}

// Multi-predicate chains against bit-packed columns: the follow-up
// predicates extract *single* packed codes at gathered positions, the
// path the paper calls "the main challenge".
TEST(ScanTailTest, BitpackedFollowUpPredicatesAtWordBoundaries) {
  constexpr size_t kRows = 130;  // Crosses two word boundaries at width 5.
  TableBuilder builder(
      {{"c0", DataType::kInt32}, {"c1", DataType::kInt32}}, kRows);
  builder.SetBitPacked(0);
  builder.SetBitPacked(1);
  for (size_t r = 0; r < kRows; ++r) {
    FTS_CHECK(builder
                  .AppendRow({Value(static_cast<int32_t>(r % 17)),
                              Value(static_cast<int32_t>((r * 3) % 17))})
                  .ok());
  }
  const TablePtr table = builder.Build();
  ScanSpec spec;
  spec.predicates.push_back({"c0", CompareOp::kGe, Value(int32_t{5})});
  spec.predicates.push_back({"c1", CompareOp::kLt, Value(int32_t{12})});
  ExpectAllEnginesAgree(table, spec, "bitpacked follow-up");
}

}  // namespace
}  // namespace fts
