#include "fts/jit/compiler_driver.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "fts/common/fault_injection.h"
#include "fts/common/timer.h"

namespace fts {
namespace {

// The hardened compiler driver is exercised with the real system compiler
// (generated sources only need to *compile*, not run, so no AVX-512 CPU is
// required) plus fault injection for the paths a healthy toolchain cannot
// reach.
class JitCompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (FaultInjection::Instance().AnyArmed()) {
      GTEST_SKIP() << "fault injection armed via FTS_FAULT; this suite "
                      "manages its own faults";
    }
    char dir_template[] = "/tmp/fts-compiler-test-XXXXXX";
    ASSERT_NE(mkdtemp(dir_template), nullptr);
    work_dir_ = dir_template;
  }

  void TearDown() override {
    if (!work_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(work_dir_, ec);
    }
  }

  size_t WorkDirEntries() const {
    size_t count = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(work_dir_)) {
      (void)entry;
      ++count;
    }
    return count;
  }

  std::string work_dir_;
};

constexpr char kValidSource[] =
    "extern \"C\" int fts_test_symbol() { return 42; }\n";

TEST_F(JitCompilerTest, CompilesAndResolvesSymbol) {
  JitCompilerOptions options;
  options.work_dir = work_dir_;
  JitCompiler compiler(options);
  const auto module = compiler.Compile(kValidSource, "fts_test_symbol");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  EXPECT_NE((*module)->symbol_address(), nullptr);
  EXPECT_GT((*module)->compile_millis(), 0.0);
  // Scratch directory removed even on success (the .so stays mapped).
  EXPECT_EQ(WorkDirEntries(), 0u);
}

TEST_F(JitCompilerTest, ArtifactsCleanedUpOnCompileFailure) {
  JitCompilerOptions options;
  options.work_dir = work_dir_;
  JitCompiler compiler(options);
  const auto result = compiler.Compile("this is not C++", "nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  // keep_artifacts == false must clean up the .cpp/.log scratch files on
  // the failure path too, not only on success.
  EXPECT_EQ(WorkDirEntries(), 0u);
}

TEST_F(JitCompilerTest, ArtifactsKeptOnFailureWhenRequested) {
  JitCompilerOptions options;
  options.work_dir = work_dir_;
  options.keep_artifacts = true;
  JitCompiler compiler(options);
  const auto result = compiler.Compile("this is not C++", "nope");
  ASSERT_FALSE(result.ok());
  EXPECT_GE(WorkDirEntries(), 1u);  // The fts-jit-* scratch dir survives.
}

TEST_F(JitCompilerTest, MissingCompilerIsUnavailable) {
  JitCompilerOptions options;
  options.compiler = "/nonexistent/compiler";
  options.work_dir = work_dir_;
  JitCompiler compiler(options);
  const auto result = compiler.Compile(kValidSource, "fts_test_symbol");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(WorkDirEntries(), 0u);
}

TEST_F(JitCompilerTest, TimeoutKillsCompilerProcessAndLeavesNoOrphan) {
  // A fake "compiler" that records its PID and then hangs far beyond the
  // deadline. The driver must return kDeadlineExceeded promptly, SIGKILL
  // the process, and reap it (no orphan / zombie).
  const std::string pid_file = work_dir_ + "/compiler.pid";
  const std::string fake_compiler = work_dir_ + "/slow_compiler.sh";
  {
    std::ofstream script(fake_compiler);
    script << "#!/bin/sh\necho $$ > " << pid_file << "\nexec sleep 300\n";
  }
  ASSERT_EQ(chmod(fake_compiler.c_str(), 0755), 0);

  JitCompilerOptions options;
  options.compiler = fake_compiler;
  options.work_dir = work_dir_;
  options.compile_timeout_millis = 300;
  JitCompiler compiler(options);

  Stopwatch stopwatch;
  const auto result = compiler.Compile(kValidSource, "fts_test_symbol");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(stopwatch.ElapsedMillis(), 10000.0);

  // The recorded PID must be gone: killed and reaped by the driver.
  std::ifstream in(pid_file);
  pid_t pid = 0;
  ASSERT_TRUE(in >> pid);
  ASSERT_GT(pid, 0);
  errno = 0;
  EXPECT_EQ(kill(pid, 0), -1);
  EXPECT_EQ(errno, ESRCH);
}

TEST_F(JitCompilerTest, TransientSpawnFailureIsRetriedWithBackoff) {
  // Fire counts accumulate per process, so assert the delta.
  const uint64_t fired_before =
      FaultInjection::Instance().FireCount(kFaultJitSpawnTransient);
  ScopedFault fault(kFaultJitSpawnTransient, 2);
  JitCompilerOptions options;
  options.work_dir = work_dir_;
  options.max_spawn_attempts = 3;
  options.retry_backoff_millis = 1;
  JitCompiler compiler(options);
  const auto module = compiler.Compile(kValidSource, "fts_test_symbol");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  EXPECT_EQ(FaultInjection::Instance().FireCount(kFaultJitSpawnTransient) -
                fired_before,
            2u);
}

TEST_F(JitCompilerTest, SpawnRetryBudgetIsBounded) {
  const uint64_t fired_before =
      FaultInjection::Instance().FireCount(kFaultJitSpawnTransient);
  ScopedFault fault(kFaultJitSpawnTransient);  // Fails every attempt.
  JitCompilerOptions options;
  options.work_dir = work_dir_;
  options.max_spawn_attempts = 3;
  options.retry_backoff_millis = 1;
  JitCompiler compiler(options);
  const auto result = compiler.Compile(kValidSource, "fts_test_symbol");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(FaultInjection::Instance().FireCount(kFaultJitSpawnTransient) -
                fired_before,
            3u);
  EXPECT_EQ(WorkDirEntries(), 0u);
}

TEST_F(JitCompilerTest, InjectedFaultsMapToDocumentedStatusCodes) {
  JitCompilerOptions options;
  options.work_dir = work_dir_;
  JitCompiler compiler(options);

  {
    ScopedFault fault(kFaultJitCompilerMissing);
    const auto result = compiler.Compile(kValidSource, "fts_test_symbol");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  }
  {
    ScopedFault fault(kFaultJitCompileError);
    const auto result = compiler.Compile(kValidSource, "fts_test_symbol");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
    EXPECT_EQ(WorkDirEntries(), 0u);
  }
  {
    ScopedFault fault(kFaultJitCompileTimeout);
    const auto result = compiler.Compile(kValidSource, "fts_test_symbol");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
  {
    ScopedFault fault(kFaultJitDlopenFail);
    const auto result = compiler.Compile(kValidSource, "fts_test_symbol");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
    EXPECT_NE(result.status().message().find("dlopen"), std::string::npos);
  }
  {
    ScopedFault fault(kFaultJitSymbolMissing);
    const auto result = compiler.Compile(kValidSource, "fts_test_symbol");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
    EXPECT_NE(result.status().message().find("not found"),
              std::string::npos);
  }
  EXPECT_EQ(WorkDirEntries(), 0u);
}

TEST_F(JitCompilerTest, CompileTimeoutEnvOverride) {
  ASSERT_EQ(setenv("FTS_JIT_COMPILE_TIMEOUT_MS", "1234", 1), 0);
  JitCompiler compiler;
  EXPECT_EQ(compiler.options().compile_timeout_millis, 1234);
  ASSERT_EQ(unsetenv("FTS_JIT_COMPILE_TIMEOUT_MS"), 0);
}

}  // namespace
}  // namespace fts
