#ifndef FTS_TESTS_MINI_JSON_H_
#define FTS_TESTS_MINI_JSON_H_

// Minimal recursive-descent JSON parser for test assertions: the obs
// exporters (Chrome trace, metrics JSON, BENCH lines) emit JSON, and the
// tests verify it round-trips through an independent reader rather than
// string-matching the writer's own output. Supports the full JSON value
// grammar; numbers are doubles (enough for ts/dur/count assertions).

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fts::testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  // Object member access; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class MiniJsonParser {
 public:
  explicit MiniJsonParser(std::string_view text) : text_(text) {}

  // Parses one JSON document. nullopt on any syntax error or trailing
  // garbage.
  std::optional<JsonValue> Parse() {
    JsonValue value;
    if (!ParseValue(&value)) return std::nullopt;
    SkipSpace();
    if (pos_ != text_.size()) return std::nullopt;
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return ConsumeLiteral("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return ConsumeLiteral("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out->push_back(escape);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return false;
          // The writers only escape control characters, so one byte is
          // enough; reject surrogate-range escapes outright.
          if (code > 0xFF) return false;
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return false;
      }
    }
    return false;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

inline std::optional<JsonValue> ParseJson(std::string_view text) {
  return MiniJsonParser(text).Parse();
}

}  // namespace fts::testing

#endif  // FTS_TESTS_MINI_JSON_H_
