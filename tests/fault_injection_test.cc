#include "fts/common/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace fts {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // Never leak armed points into other tests; restore whatever the
    // process environment says (normally: nothing armed).
    FaultInjection::Instance().ReloadFromEnv();
  }
};

TEST_F(FaultInjectionTest, UnarmedPointNeverFires) {
  EXPECT_FALSE(FaultInjection::Instance().ShouldFail("test.unarmed"));
  EXPECT_EQ(FaultInjection::Instance().FireCount("test.unarmed"), 0u);
}

TEST_F(FaultInjectionTest, ArmedPointFiresAndCounts) {
  FaultInjection& faults = FaultInjection::Instance();
  faults.Arm("test.point");
  EXPECT_TRUE(faults.ShouldFail("test.point"));
  EXPECT_TRUE(faults.ShouldFail("test.point"));
  EXPECT_EQ(faults.FireCount("test.point"), 2u);
  EXPECT_TRUE(faults.AnyArmed());
}

TEST_F(FaultInjectionTest, CountedArmExhausts) {
  FaultInjection& faults = FaultInjection::Instance();
  faults.Arm("test.counted", 2);
  EXPECT_TRUE(faults.ShouldFail("test.counted"));
  EXPECT_TRUE(faults.ShouldFail("test.counted"));
  EXPECT_FALSE(faults.ShouldFail("test.counted"));
  EXPECT_EQ(faults.FireCount("test.counted"), 2u);
}

TEST_F(FaultInjectionTest, DisarmStopsFiringButKeepsCount) {
  FaultInjection& faults = FaultInjection::Instance();
  faults.Arm("test.disarm");
  EXPECT_TRUE(faults.ShouldFail("test.disarm"));
  faults.Disarm("test.disarm");
  EXPECT_FALSE(faults.ShouldFail("test.disarm"));
  EXPECT_EQ(faults.FireCount("test.disarm"), 1u);
}

TEST_F(FaultInjectionTest, ResetClearsEverything) {
  FaultInjection& faults = FaultInjection::Instance();
  faults.Arm("test.reset");
  ASSERT_TRUE(faults.ShouldFail("test.reset"));
  faults.Reset();
  EXPECT_FALSE(faults.ShouldFail("test.reset"));
  EXPECT_EQ(faults.FireCount("test.reset"), 0u);
  EXPECT_FALSE(faults.AnyArmed());
}

TEST_F(FaultInjectionTest, ScopedFaultArmsForScope) {
  FaultInjection& faults = FaultInjection::Instance();
  {
    ScopedFault fault("test.scoped");
    EXPECT_TRUE(faults.ShouldFail("test.scoped"));
  }
  EXPECT_FALSE(faults.ShouldFail("test.scoped"));
}

TEST_F(FaultInjectionTest, EnvParsingWithCountsAndWhitespace) {
  const char* original = getenv("FTS_FAULT");
  const std::string saved = original != nullptr ? original : "";
  const bool had_value = original != nullptr;

  ASSERT_EQ(setenv("FTS_FAULT", "a.one, b.two:2 ,c.three:0", 1), 0);
  FaultInjection& faults = FaultInjection::Instance();
  faults.ReloadFromEnv();
  EXPECT_TRUE(faults.ShouldFail("a.one"));
  EXPECT_TRUE(faults.ShouldFail("a.one"));  // Unlimited.
  EXPECT_TRUE(faults.ShouldFail("b.two"));
  EXPECT_TRUE(faults.ShouldFail("b.two"));
  EXPECT_FALSE(faults.ShouldFail("b.two"));  // Counted out.
  EXPECT_FALSE(faults.ShouldFail("c.three"));  // Armed with zero budget.
  ASSERT_EQ(unsetenv("FTS_FAULT"), 0);
  faults.ReloadFromEnv();
  EXPECT_FALSE(faults.ShouldFail("a.one"));
  EXPECT_FALSE(faults.AnyArmed());

  if (had_value) ASSERT_EQ(setenv("FTS_FAULT", saved.c_str(), 1), 0);
}

}  // namespace
}  // namespace fts
