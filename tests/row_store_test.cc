#include <gtest/gtest.h>

#include "fts/common/random.h"
#include "fts/scan/row_store.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace fts {
namespace {

TEST(RowStoreTest, LayoutAndCellAccess) {
  RowStore store({{"a", DataType::kInt8},
                  {"b", DataType::kInt64},
                  {"c", DataType::kFloat32}});
  EXPECT_EQ(store.row_bytes(), 1u + 8u + 4u);
  ASSERT_TRUE(store.AppendRow({Value(1), Value(int64_t{1} << 40),
                               Value(2.5f)})
                  .ok());
  ASSERT_TRUE(
      store.AppendRow({Value(-2), Value(int64_t{7}), Value(-0.5f)}).ok());
  EXPECT_EQ(store.row_count(), 2u);
  EXPECT_EQ(ValueAs<int>(store.GetValue(0, 0)), 1);
  EXPECT_EQ(ValueAs<int64_t>(store.GetValue(0, 1)), int64_t{1} << 40);
  EXPECT_FLOAT_EQ(ValueAs<float>(store.GetValue(1, 2)), -0.5f);
  EXPECT_EQ(ValueAs<int>(store.GetValue(1, 0)), -2);
}

TEST(RowStoreTest, AppendValidation) {
  RowStore store({{"a", DataType::kInt8}});
  EXPECT_FALSE(store.AppendRow({Value(1), Value(2)}).ok());
  EXPECT_FALSE(store.AppendRow({Value(1000)}).ok());  // Overflows int8.
  EXPECT_EQ(store.row_count(), 0u);
}

TEST(RowStoreTest, ScanMatchesColumnStore) {
  // Same data as rows and as columns; scans must agree for all operators.
  Xoshiro256 rng(17);
  const size_t rows = 4000;
  AlignedVector<int32_t> a(rows), b(rows);
  for (size_t i = 0; i < rows; ++i) {
    a[i] = static_cast<int32_t>(rng.NextBounded(10));
    b[i] = static_cast<int32_t>(rng.NextBounded(10));
  }

  std::vector<ColumnDefinition> schema = {{"a", DataType::kInt32},
                                          {"b", DataType::kInt32}};
  TableBuilder builder(schema);
  AlignedVector<int32_t> a_copy = a, b_copy = b;
  FTS_CHECK(
      builder
          .AddChunk(
              {std::make_shared<ValueColumn<int32_t>>(std::move(a_copy)),
               std::make_shared<ValueColumn<int32_t>>(std::move(b_copy))})
          .ok());
  const TablePtr table = builder.Build();

  RowStore store(schema);
  for (size_t i = 0; i < rows; ++i) {
    FTS_CHECK(store.AppendRow({Value(a[i]), Value(b[i])}).ok());
  }

  for (const CompareOp op : kAllCompareOps) {
    ScanSpec spec;
    spec.predicates = {{"a", op, Value(5)}, {"b", CompareOp::kNe, Value(3)}};
    const auto row_matches = store.Scan(spec);
    ASSERT_TRUE(row_matches.ok());
    const auto column_matches =
        ExecuteScan(table, spec, ScanEngine::kScalarFused);
    ASSERT_TRUE(column_matches.ok());
    const PosList& expected = column_matches->chunks[0].positions;
    ASSERT_EQ(row_matches->size(), expected.size())
        << CompareOpToString(op);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*row_matches)[i], expected[i]);
    }
    const auto count = store.ScanCount(spec);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, expected.size());
  }
}

TEST(RowStoreTest, AppendColumnsAsRows) {
  AlignedVector<int32_t> a = {1, 2, 3};
  AlignedVector<int32_t> b = {4, 5, 6};
  const ValueColumn<int32_t> col_a(std::move(a));
  const ValueColumn<int32_t> col_b(std::move(b));
  RowStore store({{"a", DataType::kInt32}, {"b", DataType::kInt32}});
  ASSERT_TRUE(store.AppendColumnsAsRows({&col_a, &col_b}).ok());
  EXPECT_EQ(store.row_count(), 3u);
  EXPECT_EQ(ValueAs<int>(store.GetValue(2, 1)), 6);
}

TEST(RowStoreTest, ScanErrors) {
  RowStore store({{"a", DataType::kInt32}});
  FTS_CHECK(store.AppendRow({Value(1)}).ok());
  ScanSpec unknown;
  unknown.predicates = {{"zzz", CompareOp::kEq, Value(1)}};
  EXPECT_EQ(store.Scan(unknown).status().code(), StatusCode::kNotFound);
  ScanSpec bad_value;
  bad_value.predicates = {{"a", CompareOp::kEq, Value(1.5)}};
  EXPECT_FALSE(store.Scan(bad_value).ok());
}

}  // namespace
}  // namespace fts
