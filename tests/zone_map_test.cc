// Unit tests for the zone-map layer: the min-max reduction kernels
// (fts/simd/minmax_kernels.h) against std::minmax_element on every ISA the
// CPU offers, the bit-packed code reduction across word-boundary runs,
// BuildColumnZoneMap over every encoding, and the ClassifyZone predicate
// logic the scan planner relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "fts/common/aligned_buffer.h"
#include "fts/common/random.h"
#include "fts/scan/table_scan.h"
#include "fts/simd/minmax_kernels.h"
#include "fts/simd/zone_map_builder.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/delta_column.h"
#include "fts/storage/dictionary_column.h"
#include "fts/storage/for_column.h"
#include "fts/storage/rle_column.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"
#include "fts/storage/zone_map.h"

namespace fts {
namespace {

// Sizes that stress lane tails: below/at/above the 8- and 16-lane widths,
// plus a chunk-ish body.
constexpr size_t kSizes[] = {1, 2, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100,
                             127, 1000, 4097};

std::vector<MinMaxKernelKind> AvailableKinds() {
  std::vector<MinMaxKernelKind> kinds;
  for (const MinMaxKernelKind kind :
       {MinMaxKernelKind::kScalar, MinMaxKernelKind::kAvx2,
        MinMaxKernelKind::kAvx512}) {
    if (GetMinMaxKernels(kind) != nullptr) kinds.push_back(kind);
  }
  return kinds;
}

template <typename T, typename Fn>
void CheckTypedKernel(Fn fn, const char* what, Xoshiro256& rng) {
  for (const size_t rows : kSizes) {
    AlignedVector<T> data(rows);
    for (auto& v : data) {
      if constexpr (std::is_floating_point_v<T>) {
        v = static_cast<T>(static_cast<int64_t>(rng.NextBounded(20001)) -
                           10000) /
            T{2};
      } else {
        // Span the full type range, including both extremes.
        v = static_cast<T>(rng.Next());
      }
    }
    // Plant the exact type extremes sometimes so boundary values round-trip.
    if constexpr (!std::is_floating_point_v<T>) {
      if (rows >= 3) {
        data[rng.NextBounded(rows)] = std::numeric_limits<T>::min();
        data[rng.NextBounded(rows)] = std::numeric_limits<T>::max();
      }
    }
    const auto [expect_min, expect_max] =
        std::minmax_element(data.begin(), data.end());
    T min{};
    T max{};
    ASSERT_TRUE(fn(data.data(), rows, &min, &max)) << what << " rows=" << rows;
    EXPECT_EQ(min, *expect_min) << what << " rows=" << rows;
    EXPECT_EQ(max, *expect_max) << what << " rows=" << rows;
  }
}

TEST(MinMaxKernelsTest, TypedReductionsMatchStd) {
  Xoshiro256 rng(7);
  for (const MinMaxKernelKind kind : AvailableKinds()) {
    const MinMaxKernels& kernels = *GetMinMaxKernels(kind);
    const char* name = MinMaxKernelKindToString(kind);
    CheckTypedKernel<int32_t>(kernels.i32, name, rng);
    CheckTypedKernel<uint32_t>(kernels.u32, name, rng);
    CheckTypedKernel<int64_t>(kernels.i64, name, rng);
    CheckTypedKernel<uint64_t>(kernels.u64, name, rng);
    CheckTypedKernel<float>(kernels.f32, name, rng);
    CheckTypedKernel<double>(kernels.f64, name, rng);
  }
}

TEST(MinMaxKernelsTest, FloatKernelsRejectNaN) {
  for (const MinMaxKernelKind kind : AvailableKinds()) {
    const MinMaxKernels& kernels = *GetMinMaxKernels(kind);
    for (const size_t rows : kSizes) {
      for (const size_t nan_at : {size_t{0}, rows / 2, rows - 1}) {
        AlignedVector<float> f32(rows, 1.0f);
        f32[nan_at] = std::nanf("");
        float fmin, fmax;
        EXPECT_FALSE(kernels.f32(f32.data(), rows, &fmin, &fmax))
            << MinMaxKernelKindToString(kind) << " rows=" << rows
            << " nan_at=" << nan_at;
        AlignedVector<double> f64(rows, 1.0);
        f64[nan_at] = std::nan("");
        double dmin, dmax;
        EXPECT_FALSE(kernels.f64(f64.data(), rows, &dmin, &dmax))
            << MinMaxKernelKindToString(kind) << " rows=" << rows
            << " nan_at=" << nan_at;
      }
    }
  }
}

// The packed reduction must agree with a code-at-a-time ExtractCode loop
// at every bit width, including runs whose rows*bits cross 64-bit word
// boundaries mid-stream (shift wraps through all 8 byte phases).
TEST(MinMaxKernelsTest, PackedReductionMatchesScalarExtract) {
  Xoshiro256 rng(11);
  for (const MinMaxKernelKind kind : AvailableKinds()) {
    const MinMaxKernels& kernels = *GetMinMaxKernels(kind);
    for (int bits = 1; bits <= kMaxPackedBits; ++bits) {
      for (const size_t rows : kSizes) {
        AlignedVector<uint8_t> packed(
            BitPackedColumn<int32_t>::PackedBytes(rows, bits) +
                kBitPackedSlackBytes,
            0);
        const uint64_t mask = (uint64_t{1} << bits) - 1;
        uint32_t expect_min = ~uint32_t{0};
        uint32_t expect_max = 0;
        for (size_t row = 0; row < rows; ++row) {
          const uint64_t code = rng.Next() & mask;
          BitPackedColumn<int32_t>::WriteCode(packed.data(), row, bits, code);
          expect_min = std::min(expect_min, static_cast<uint32_t>(code));
          expect_max = std::max(expect_max, static_cast<uint32_t>(code));
        }
        uint32_t min = 0;
        uint32_t max = 0;
        kernels.packed(packed.data(), rows, bits, &min, &max);
        ASSERT_EQ(min, expect_min)
            << MinMaxKernelKindToString(kind) << " bits=" << bits
            << " rows=" << rows;
        ASSERT_EQ(max, expect_max)
            << MinMaxKernelKindToString(kind) << " bits=" << bits
            << " rows=" << rows;
      }
    }
  }
}

TEST(ZoneMapBuilderTest, PlainColumnsEveryType) {
  Xoshiro256 rng(3);
  const auto check = [&](auto tag) {
    using T = decltype(tag);
    for (const size_t rows : {size_t{1}, size_t{2}, size_t{1000}}) {
      AlignedVector<T> values(rows);
      for (auto& v : values) {
        v = static_cast<T>(static_cast<int64_t>(rng.NextBounded(2001)) -
                           1000);
      }
      const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
      const T expect_min = *lo;
      const T expect_max = *hi;
      const ValueColumn<T> column{AlignedVector<T>(values)};
      const ZoneMap zone = BuildColumnZoneMap(column);
      ASSERT_TRUE(zone.valid);
      EXPECT_EQ(zone.row_count, rows);
      EXPECT_TRUE(zone.nulls_free);
      EXPECT_FALSE(zone.has_codes);
      EXPECT_EQ(ValueAs<T>(zone.min), expect_min);
      EXPECT_EQ(ValueAs<T>(zone.max), expect_max);
    }
  };
  check(int8_t{});
  check(int16_t{});
  check(int32_t{});
  check(int64_t{});
  check(uint8_t{});
  check(uint16_t{});
  check(uint32_t{});
  check(uint64_t{});
  check(float{});
  check(double{});
}

TEST(ZoneMapBuilderTest, EmptyColumnIsInvalid) {
  const ValueColumn<int32_t> column{AlignedVector<int32_t>{}};
  const ZoneMap zone = BuildColumnZoneMap(column);
  EXPECT_FALSE(zone.valid);
  EXPECT_EQ(zone.row_count, 0u);
}

TEST(ZoneMapBuilderTest, NaNFloatChunkIsInvalid) {
  AlignedVector<double> values = {1.0, std::nan(""), 3.0};
  const ValueColumn<double> column{std::move(values)};
  const ZoneMap zone = BuildColumnZoneMap(column);
  EXPECT_FALSE(zone.valid);
  EXPECT_EQ(zone.row_count, 3u);
}

TEST(ZoneMapBuilderTest, DictionaryColumnCodeAndValueBounds) {
  AlignedVector<int32_t> values = {50, 20, 80, 20, 50};
  const DictionaryColumn<int32_t> column =
      DictionaryColumn<int32_t>::FromValues(values);
  const ZoneMap zone = BuildColumnZoneMap(column);
  ASSERT_TRUE(zone.valid);
  ASSERT_TRUE(zone.has_codes);
  // Sorted dictionary {20, 50, 80}: codes span 0..2, values 20..80.
  EXPECT_EQ(zone.min_code, 0u);
  EXPECT_EQ(zone.max_code, 2u);
  EXPECT_EQ(ValueAs<int32_t>(zone.min), 20);
  EXPECT_EQ(ValueAs<int32_t>(zone.max), 80);
}

// Hand-built dictionary with entries no row references: the code bounds
// must come from the stored codes, and the value bounds from indexing the
// dictionary at those bounds.
TEST(ZoneMapBuilderTest, UnusedDictionaryEntriesDoNotWidenBounds) {
  std::vector<int32_t> dictionary = {10, 20, 30, 40, 50};
  AlignedVector<uint32_t> codes = {2, 3, 2, 3, 3};
  const DictionaryColumn<int32_t> column(std::move(dictionary),
                                         std::move(codes));
  const ZoneMap zone = BuildColumnZoneMap(column);
  ASSERT_TRUE(zone.valid);
  EXPECT_EQ(zone.min_code, 2u);
  EXPECT_EQ(zone.max_code, 3u);
  EXPECT_EQ(ValueAs<int32_t>(zone.min), 30);
  EXPECT_EQ(ValueAs<int32_t>(zone.max), 40);
}

TEST(ZoneMapBuilderTest, BitPackedColumnEveryWidth) {
  Xoshiro256 rng(5);
  // Dictionary sizes straddling several bit widths, with rows counts that
  // put codes on word boundaries.
  for (const size_t cardinality : {size_t{2}, size_t{3}, size_t{9},
                                   size_t{100}, size_t{1000}}) {
    for (const size_t rows : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                              size_t{1000}}) {
      AlignedVector<int32_t> values(rows);
      for (auto& v : values) {
        v = static_cast<int32_t>(rng.NextBounded(cardinality)) * 3;
      }
      const BitPackedColumn<int32_t> column =
          BitPackedColumn<int32_t>::FromValues(values);
      const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
      const ZoneMap zone = BuildColumnZoneMap(column);
      ASSERT_TRUE(zone.valid);
      ASSERT_TRUE(zone.has_codes);
      EXPECT_EQ(ValueAs<int32_t>(zone.min), *lo)
          << "cardinality=" << cardinality << " rows=" << rows;
      EXPECT_EQ(ValueAs<int32_t>(zone.max), *hi)
          << "cardinality=" << cardinality << " rows=" << rows;
      EXPECT_EQ(zone.min_code, column.CodeAt(static_cast<size_t>(
                                   lo - values.begin())));
      EXPECT_EQ(zone.max_code, column.CodeAt(static_cast<size_t>(
                                   hi - values.begin())));
    }
  }
}

// The compressed encodings build zone maps without decoding: RLE reduces
// over the run values, FoR over base + delta bounds, delta over the
// per-block min/max. Bounds must match the decoded data exactly — pruning
// correctness for the compressed-domain scan paths hangs off these.
TEST(ZoneMapBuilderTest, CompressedEncodingsCarryValueBounds) {
  Xoshiro256 rng(13);
  for (const size_t rows :
       {size_t{1}, size_t{17}, size_t{1000}, size_t{1025}, size_t{4097}}) {
    AlignedVector<int64_t> values(rows);
    // Clustered values so RLE actually forms runs; spread enough that
    // delta blocks carry distinct bounds.
    int64_t current = static_cast<int64_t>(rng.NextBounded(1000));
    for (auto& v : values) {
      if (rng.NextBounded(4) == 0) {
        current = static_cast<int64_t>(rng.NextBounded(1000)) - 500;
      }
      v = current;
    }
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());

    const RleColumn<int64_t> rle = RleColumn<int64_t>::FromValues(values);
    const ZoneMap rle_zone = BuildColumnZoneMap(rle);
    ASSERT_TRUE(rle_zone.valid) << "rle rows=" << rows;
    EXPECT_EQ(rle_zone.row_count, rows);
    EXPECT_EQ(ValueAs<int64_t>(rle_zone.min), *lo) << "rle rows=" << rows;
    EXPECT_EQ(ValueAs<int64_t>(rle_zone.max), *hi) << "rle rows=" << rows;

    const auto for_column = ForColumn<int64_t>::TryFromValues(values);
    ASSERT_TRUE(for_column.has_value()) << "rows=" << rows;
    const ZoneMap for_zone = BuildColumnZoneMap(*for_column);
    ASSERT_TRUE(for_zone.valid) << "for rows=" << rows;
    EXPECT_EQ(ValueAs<int64_t>(for_zone.min), *lo) << "for rows=" << rows;
    EXPECT_EQ(ValueAs<int64_t>(for_zone.max), *hi) << "for rows=" << rows;

    const auto delta = DeltaColumn<int64_t>::TryFromValues(values);
    ASSERT_TRUE(delta.has_value()) << "rows=" << rows;
    const ZoneMap delta_zone = BuildColumnZoneMap(*delta);
    ASSERT_TRUE(delta_zone.valid) << "delta rows=" << rows;
    EXPECT_EQ(ValueAs<int64_t>(delta_zone.min), *lo)
        << "delta rows=" << rows;
    EXPECT_EQ(ValueAs<int64_t>(delta_zone.max), *hi)
        << "delta rows=" << rows;
  }
}

// Regression: a zero-row chunk has no zone map bounds (BuildColumnZoneMap
// returns invalid), and the planner used to build stages against the
// sentinel values. It must instead classify the chunk as always-pruned —
// impossible, counted in chunks_pruned, contributing zero matches.
TEST(ZoneMapBuilderTest, ZeroRowChunkIsAlwaysPruned) {
  TableBuilder builder({{"a", DataType::kInt32}});
  ASSERT_TRUE(
      builder
          .AddChunk({std::make_shared<ValueColumn<int32_t>>(
              AlignedVector<int32_t>{5, 6, 7})})
          .ok());
  ASSERT_TRUE(builder
                  .AddChunk({std::make_shared<ValueColumn<int32_t>>(
                      AlignedVector<int32_t>{})})
                  .ok());
  const TablePtr table = builder.Build();
  ASSERT_EQ(table->chunk_count(), 2u);
  // The invalid zone map is withheld entirely.
  EXPECT_EQ(table->chunk(1).zone_map(0), nullptr);

  ScanSpec spec;
  spec.predicates = {{"a", CompareOp::kGe, Value(int32_t{6})}};
  const auto prepared = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(prepared->chunk_plans()[0].impossible);
  EXPECT_TRUE(prepared->chunk_plans()[1].impossible);
  EXPECT_EQ(prepared->pruning().chunks_pruned, 1u);

  const auto matches = prepared->Execute(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->TotalMatches(), 2u);  // Rows 6 and 7 in chunk 0 only.
}

TEST(ZoneMapBuilderTest, TableBuilderAttachesZoneMapsToEveryChunk) {
  TableBuilder builder({{"a", DataType::kInt32}, {"b", DataType::kFloat64}},
                       /*target_chunk_size=*/16);
  builder.SetDictionaryEncoded(0);
  for (int r = 0; r < 50; ++r) {
    FTS_CHECK(builder
                  .AppendRow({Value(int32_t{100 - r}),
                              Value(static_cast<double>(r) / 2.0)})
                  .ok());
  }
  const TablePtr table = builder.Build();
  ASSERT_EQ(table->chunk_count(), 4u);  // 16+16+16+2.
  for (ChunkId chunk_id = 0; chunk_id < table->chunk_count(); ++chunk_id) {
    const Chunk& chunk = table->chunk(chunk_id);
    for (size_t c = 0; c < chunk.column_count(); ++c) {
      const ZoneMap* zone = chunk.zone_map(c);
      ASSERT_NE(zone, nullptr) << "chunk " << chunk_id << " col " << c;
      EXPECT_EQ(zone->row_count, chunk.row_count());
    }
  }
  // Chunk 1 holds a = 100-16 .. 100-31 descending.
  const ZoneMap* zone = table->chunk(1).zone_map(0);
  EXPECT_EQ(ValueAs<int32_t>(zone->min), 69);
  EXPECT_EQ(ValueAs<int32_t>(zone->max), 84);
}

// ClassifyZone truth table over a [10, 20] zone, including both inclusive
// boundaries — the off-by-one surface where pruning bugs live.
TEST(ClassifyZoneTest, TruthTable) {
  const auto fate = [](CompareOp op, int32_t v) {
    return ClassifyZone<int32_t>(10, 20, op, v);
  };
  using enum ZoneFate;
  // Eq: outside -> kNone; inside -> kMaybe.
  EXPECT_EQ(fate(CompareOp::kEq, 9), kNone);
  EXPECT_EQ(fate(CompareOp::kEq, 10), kMaybe);
  EXPECT_EQ(fate(CompareOp::kEq, 20), kMaybe);
  EXPECT_EQ(fate(CompareOp::kEq, 21), kNone);
  // Ne: outside -> kAll; inside -> kMaybe.
  EXPECT_EQ(fate(CompareOp::kNe, 9), kAll);
  EXPECT_EQ(fate(CompareOp::kNe, 15), kMaybe);
  EXPECT_EQ(fate(CompareOp::kNe, 21), kAll);
  // Lt: v <= min -> kNone; v > max -> kAll.
  EXPECT_EQ(fate(CompareOp::kLt, 10), kNone);
  EXPECT_EQ(fate(CompareOp::kLt, 11), kMaybe);
  EXPECT_EQ(fate(CompareOp::kLt, 20), kMaybe);
  EXPECT_EQ(fate(CompareOp::kLt, 21), kAll);
  // Le: v < min -> kNone; v >= max -> kAll.
  EXPECT_EQ(fate(CompareOp::kLe, 9), kNone);
  EXPECT_EQ(fate(CompareOp::kLe, 10), kMaybe);
  EXPECT_EQ(fate(CompareOp::kLe, 20), kAll);
  // Gt: v >= max -> kNone; v < min -> kAll.
  EXPECT_EQ(fate(CompareOp::kGt, 20), kNone);
  EXPECT_EQ(fate(CompareOp::kGt, 19), kMaybe);
  EXPECT_EQ(fate(CompareOp::kGt, 10), kMaybe);
  EXPECT_EQ(fate(CompareOp::kGt, 9), kAll);
  // Ge: v > max -> kNone; v <= min -> kAll.
  EXPECT_EQ(fate(CompareOp::kGe, 21), kNone);
  EXPECT_EQ(fate(CompareOp::kGe, 20), kMaybe);
  EXPECT_EQ(fate(CompareOp::kGe, 11), kMaybe);
  EXPECT_EQ(fate(CompareOp::kGe, 10), kAll);
}

TEST(ClassifyZoneTest, SingleValueZone) {
  using enum ZoneFate;
  EXPECT_EQ(ClassifyZone<int32_t>(7, 7, CompareOp::kEq, 7), kAll);
  EXPECT_EQ(ClassifyZone<int32_t>(7, 7, CompareOp::kEq, 8), kNone);
  EXPECT_EQ(ClassifyZone<int32_t>(7, 7, CompareOp::kNe, 7), kNone);
  EXPECT_EQ(ClassifyZone<int32_t>(7, 7, CompareOp::kNe, 8), kAll);
}

TEST(ClassifyZoneTest, NaNSearchValueDecidesWithoutBounds) {
  using enum ZoneFate;
  const double nan = std::nan("");
  EXPECT_EQ(ClassifyZone<double>(1.0, 2.0, CompareOp::kEq, nan), kNone);
  EXPECT_EQ(ClassifyZone<double>(1.0, 2.0, CompareOp::kLt, nan), kNone);
  EXPECT_EQ(ClassifyZone<double>(1.0, 2.0, CompareOp::kGe, nan), kNone);
  EXPECT_EQ(ClassifyZone<double>(1.0, 2.0, CompareOp::kNe, nan), kAll);
}

TEST(ClassifyZoneTest, TypeBoundaryValues) {
  using enum ZoneFate;
  constexpr int32_t kMin = std::numeric_limits<int32_t>::min();
  constexpr int32_t kMax = std::numeric_limits<int32_t>::max();
  // A zone spanning the whole type: nothing outside it exists.
  EXPECT_EQ(ClassifyZone<int32_t>(kMin, kMax, CompareOp::kGe, kMin), kAll);
  EXPECT_EQ(ClassifyZone<int32_t>(kMin, kMax, CompareOp::kLe, kMax), kAll);
  EXPECT_EQ(ClassifyZone<int32_t>(kMin, kMax, CompareOp::kLt, kMin), kNone);
  EXPECT_EQ(ClassifyZone<int32_t>(kMin, kMax, CompareOp::kGt, kMax), kNone);
  // Unsigned boundary.
  EXPECT_EQ(ClassifyZone<uint32_t>(0u, ~0u, CompareOp::kGe, 0u), kAll);
  EXPECT_EQ(ClassifyZone<uint32_t>(0u, ~0u, CompareOp::kLt, 0u), kNone);
}

}  // namespace
}  // namespace fts
