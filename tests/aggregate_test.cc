#include <gtest/gtest.h>

#include "fts/db/database.h"
#include "fts/sql/parser.h"
#include "fts/storage/table_builder.h"

namespace fts {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // v: 0..99; w: v * 2 as float64; flag: v % 2.
    TableBuilder builder({{"v", DataType::kInt32},
                          {"w", DataType::kFloat64},
                          {"flag", DataType::kInt32}});
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          builder.AppendRow({Value(i), Value(i * 2.0), Value(i % 2)}).ok());
    }
    ASSERT_TRUE(db_.RegisterTable("t", builder.Build()).ok());
  }

  Database db_;
};

TEST_F(AggregateTest, ParserAcceptsAggregates) {
  const auto statement = ParseSelect(
      "SELECT SUM(a), MIN(b), MAX(c), AVG(d), COUNT(*) FROM t");
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  ASSERT_EQ(statement->aggregates.size(), 5u);
  EXPECT_EQ(statement->aggregates[0].kind, AggregateKind::kSum);
  EXPECT_EQ(statement->aggregates[0].column, "a");
  EXPECT_EQ(statement->aggregates[4].kind, AggregateKind::kCountStar);
  EXPECT_FALSE(statement->count_star);  // Not the single-COUNT(*) case.
}

TEST_F(AggregateTest, ParserRejectsMixedProjection) {
  EXPECT_FALSE(ParseSelect("SELECT SUM(a), b FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT COUNT(a) FROM t").ok());
}

TEST_F(AggregateTest, SumMinMaxAvg) {
  const auto result =
      db_.Query("SELECT SUM(v), MIN(v), MAX(v), AVG(v) FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->column_names,
            (std::vector<std::string>{"SUM(v)", "MIN(v)", "MAX(v)",
                                      "AVG(v)"}));
  EXPECT_EQ(ValueAs<int64_t>(result->rows[0][0]), 4950);
  EXPECT_EQ(ValueAs<int>(result->rows[0][1]), 0);
  EXPECT_EQ(ValueAs<int>(result->rows[0][2]), 99);
  EXPECT_DOUBLE_EQ(ValueAs<double>(result->rows[0][3]), 49.5);
}

TEST_F(AggregateTest, AggregatesRespectPredicates) {
  const auto result = db_.Query(
      "SELECT SUM(v), COUNT(*) FROM t WHERE flag = 1 AND v < 10");
  ASSERT_TRUE(result.ok());
  // Odd v below 10: 1+3+5+7+9 = 25, five rows.
  EXPECT_EQ(ValueAs<int64_t>(result->rows[0][0]), 25);
  EXPECT_EQ(ValueAs<uint64_t>(result->rows[0][1]), 5u);
}

TEST_F(AggregateTest, FloatAggregates) {
  const auto result =
      db_.Query("SELECT SUM(w), AVG(w) FROM t WHERE v >= 98");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(ValueAs<double>(result->rows[0][0]), 98.0 * 2 + 99.0 * 2);
  EXPECT_DOUBLE_EQ(ValueAs<double>(result->rows[0][1]), 197.0);
}

TEST_F(AggregateTest, EmptyMatchNullSemantics) {
  // SQL semantics over zero matched rows: MIN/MAX/AVG are NULL, SUM stays
  // a typed 0, COUNT(*) a plain 0 — on both the pushed-down and the
  // materialize-then-aggregate paths.
  for (const bool pushdown : {true, false}) {
    Database::QueryOptions options;
    options.aggregate_pushdown = pushdown;
    const auto result = db_.Query(
        "SELECT SUM(v), MIN(v), MAX(v), AVG(v), COUNT(*) FROM t "
        "WHERE v > 1000",
        options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const std::vector<Value>& row = result->rows[0];
    EXPECT_FALSE(IsNull(row[0])) << "pushdown=" << pushdown;
    EXPECT_EQ(ValueAs<int64_t>(row[0]), 0);
    EXPECT_TRUE(IsNull(row[1])) << "pushdown=" << pushdown;
    EXPECT_TRUE(IsNull(row[2])) << "pushdown=" << pushdown;
    EXPECT_TRUE(IsNull(row[3])) << "pushdown=" << pushdown;
    EXPECT_FALSE(IsNull(row[4]));
    EXPECT_EQ(ValueAs<uint64_t>(row[4]), 0u);
    // NULL cells render as the literal "NULL" in result tables.
    EXPECT_EQ(ValueToString(row[1]), "NULL");
    EXPECT_NE(result->ToString().find("NULL"), std::string::npos);
  }
}

TEST_F(AggregateTest, ContradictionShortCircuitsAggregates) {
  const auto result = db_.Query(
      "SELECT SUM(v), MIN(v), COUNT(*) FROM t WHERE v = 1 AND v = 2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ValueAs<int64_t>(result->rows[0][0]), 0);
  EXPECT_TRUE(IsNull(result->rows[0][1]));
  EXPECT_EQ(result->matched_rows, 0u);
}

TEST_F(AggregateTest, TpchQ6Shape) {
  // The paper's motivating query computes SUM over a 3-predicate chain.
  const auto result = db_.Query(
      "SELECT SUM(v) FROM t WHERE v >= 10 AND v < 20 AND flag = 0");
  ASSERT_TRUE(result.ok());
  // Even v in [10, 20): 10+12+14+16+18 = 70.
  EXPECT_EQ(ValueAs<int64_t>(result->rows[0][0]), 70);
  const auto explain =
      db_.Explain("SELECT SUM(v) FROM t WHERE v >= 10 AND v < 20 "
                  "AND flag = 0");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("Aggregate: SUM(v)"), std::string::npos);
  EXPECT_NE(explain->find("FusedScan"), std::string::npos);
}

TEST_F(AggregateTest, OrderByAscendingAndDescending) {
  const auto asc = db_.Query(
      "SELECT v FROM t WHERE v >= 95 ORDER BY v");
  ASSERT_TRUE(asc.ok());
  ASSERT_EQ(asc->RowCountOut(), 5u);
  EXPECT_EQ(ValueAs<int>(asc->ValueAt(0, 0)), 95);
  EXPECT_EQ(ValueAs<int>(asc->ValueAt(4, 0)), 99);

  const auto desc = db_.Query(
      "SELECT v FROM t WHERE v >= 95 ORDER BY v DESC");
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(ValueAs<int>(desc->ValueAt(0, 0)), 99);
  EXPECT_EQ(ValueAs<int>(desc->ValueAt(4, 0)), 95);
}

TEST_F(AggregateTest, Limit) {
  const auto result =
      db_.Query("SELECT v FROM t ORDER BY v DESC LIMIT 3");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->RowCountOut(), 3u);
  EXPECT_EQ(ValueAs<int>(result->ValueAt(0, 0)), 99);
  EXPECT_EQ(ValueAs<int>(result->ValueAt(2, 0)), 97);
  // matched_rows reports the pre-LIMIT match count.
  EXPECT_EQ(result->matched_rows, 100u);
}

TEST_F(AggregateTest, OrderByMustBeProjected) {
  EXPECT_FALSE(db_.Query("SELECT v FROM t ORDER BY w").ok());
  EXPECT_TRUE(db_.Query("SELECT v, w FROM t ORDER BY w").ok());
}

TEST_F(AggregateTest, OrderByUnknownColumnRejected) {
  EXPECT_FALSE(db_.Query("SELECT v FROM t ORDER BY zzz").ok());
}

TEST_F(AggregateTest, StatementToStringRoundTrips) {
  for (const char* sql :
       {"SELECT SUM(v), AVG(w) FROM t WHERE v < 5",
        "SELECT v FROM t ORDER BY v DESC LIMIT 7"}) {
    const auto statement = ParseSelect(sql);
    ASSERT_TRUE(statement.ok()) << sql;
    const auto reparsed = ParseSelect(statement->ToString());
    ASSERT_TRUE(reparsed.ok()) << statement->ToString();
    EXPECT_EQ(reparsed->ToString(), statement->ToString());
  }
}

}  // namespace
}  // namespace fts
