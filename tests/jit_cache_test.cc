#include "fts/jit/jit_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "fts/common/fault_injection.h"

namespace fts {
namespace {

JitScanSignature MakeSignature(ScanElementType type, CompareOp op,
                               int register_bits = 512) {
  JitScanSignature signature;
  signature.stages.push_back({type, op, /*packed_bits=*/0});
  signature.register_bits = register_bits;
  return signature;
}

class JitCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (FaultInjection::Instance().AnyArmed()) {
      GTEST_SKIP() << "fault injection armed via FTS_FAULT; this suite "
                      "manages its own faults";
    }
  }
};

TEST_F(JitCacheTest, SingleFlightCompilesOnce) {
  JitCache cache;
  const JitScanSignature signature =
      MakeSignature(ScanElementType::kI32, CompareOp::kEq);

  constexpr int kThreads = 8;
  std::mutex mutex;
  std::condition_variable cv;
  int ready = 0;
  bool go = false;
  std::atomic<int> ok_count{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      {
        std::unique_lock<std::mutex> lock(mutex);
        if (++ready == kThreads) cv.notify_all();
        cv.wait(lock, [&] { return go; });
      }
      const auto entry = cache.GetOrCompile(signature);
      if (entry.ok() && entry->fn != nullptr) ok_count.fetch_add(1);
    });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return ready == kThreads; });
    go = true;
    cv.notify_all();
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(ok_count.load(), kThreads);
  const JitCache::Stats stats = cache.stats();
  // Exactly one thread led the compilation; every other thread ends with a
  // cache hit (after a single-flight wait if it arrived mid-compile).
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
  EXPECT_LE(stats.single_flight_waits,
            static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(JitCacheTest, FailedSignatureIsPoisonedAfterRetryBudget) {
  const uint64_t fired_before =
      FaultInjection::Instance().FireCount(kFaultJitCompileError);
  ScopedFault fault(kFaultJitCompileError);
  JitCacheOptions options;
  options.max_compile_attempts = 2;
  JitCache cache(options);
  const JitScanSignature signature =
      MakeSignature(ScanElementType::kI32, CompareOp::kLt);

  for (int i = 0; i < 5; ++i) {
    const auto entry = cache.GetOrCompile(signature);
    ASSERT_FALSE(entry.ok());
    EXPECT_EQ(entry.status().code(), StatusCode::kInternal);
  }

  // Two real attempts, then the poisoned entry answers without touching
  // the compiler again.
  EXPECT_EQ(FaultInjection::Instance().FireCount(kFaultJitCompileError) -
                fired_before,
            2u);
  const JitCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.compile_failures, 2u);
  EXPECT_EQ(stats.negative_hits, 3u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(JitCacheTest, CompilerUnavailableIsStickyAcrossSignatures) {
  // One kUnavailable failure (compiler binary missing) must short-circuit
  // *every* signature: no signature can compile without a compiler.
  JitCache cache;
  const JitScanSignature first =
      MakeSignature(ScanElementType::kI32, CompareOp::kEq);
  const JitScanSignature second =
      MakeSignature(ScanElementType::kU32, CompareOp::kGt);
  {
    ScopedFault fault(kFaultJitCompilerMissing, 1);
    const auto entry = cache.GetOrCompile(first);
    ASSERT_FALSE(entry.ok());
    EXPECT_EQ(entry.status().code(), StatusCode::kUnavailable);
  }
  // Fault disarmed, but the latch holds — even for a brand-new signature.
  const auto second_entry = cache.GetOrCompile(second);
  ASSERT_FALSE(second_entry.ok());
  EXPECT_EQ(second_entry.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_GE(cache.stats().negative_hits, 1u);

  // Clear() releases the latch; compilation works again.
  cache.Clear();
  const auto after_clear = cache.GetOrCompile(second);
  ASSERT_TRUE(after_clear.ok()) << after_clear.status().ToString();
  EXPECT_NE(after_clear->fn, nullptr);
}

TEST_F(JitCacheTest, LruEvictionBeyondCapacity) {
  JitCacheOptions options;
  options.capacity = 2;
  JitCache cache(options);

  const JitScanSignature a =
      MakeSignature(ScanElementType::kI32, CompareOp::kEq);
  const JitScanSignature b =
      MakeSignature(ScanElementType::kI32, CompareOp::kLt);
  const JitScanSignature c =
      MakeSignature(ScanElementType::kI32, CompareOp::kGt);

  ASSERT_TRUE(cache.GetOrCompile(a).ok());
  ASSERT_TRUE(cache.GetOrCompile(b).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch `a` so `b` is the least recently used, then overflow with `c`.
  ASSERT_TRUE(cache.GetOrCompile(a).ok());
  ASSERT_TRUE(cache.GetOrCompile(c).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // `a` and `c` are resident; `b` was evicted and recompiles on demand.
  const uint64_t misses_before = cache.stats().misses;
  ASSERT_TRUE(cache.GetOrCompile(a).ok());
  ASSERT_TRUE(cache.GetOrCompile(c).ok());
  EXPECT_EQ(cache.stats().misses, misses_before);
  ASSERT_TRUE(cache.GetOrCompile(b).ok());
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST_F(JitCacheTest, ClearForgetsPoisonedSignatures) {
  JitCacheOptions options;
  options.max_compile_attempts = 1;
  JitCache cache(options);
  const JitScanSignature signature =
      MakeSignature(ScanElementType::kI64, CompareOp::kNe);
  {
    ScopedFault fault(kFaultJitCompileError, 1);
    ASSERT_FALSE(cache.GetOrCompile(signature).ok());
  }
  ASSERT_FALSE(cache.GetOrCompile(signature).ok());  // Poisoned.
  cache.Clear();
  const auto entry = cache.GetOrCompile(signature);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
}

}  // namespace
}  // namespace fts
