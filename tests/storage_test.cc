#include <gtest/gtest.h>

#include "fts/storage/data_type.h"
#include "fts/storage/table.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value.h"
#include "fts/storage/value_column.h"

namespace fts {
namespace {

TEST(DataTypeTest, RoundTripNames) {
  for (int i = 0; i < kNumDataTypes; ++i) {
    const DataType type = static_cast<DataType>(i);
    EXPECT_EQ(DataTypeFromString(DataTypeToString(type)), type);
  }
}

TEST(DataTypeTest, SqlAliases) {
  DataType type{};
  ASSERT_TRUE(TryParseDataType("int", &type));
  EXPECT_EQ(type, DataType::kInt32);
  ASSERT_TRUE(TryParseDataType("bigint", &type));
  EXPECT_EQ(type, DataType::kInt64);
  ASSERT_TRUE(TryParseDataType("double", &type));
  EXPECT_EQ(type, DataType::kFloat64);
  EXPECT_FALSE(TryParseDataType("varchar", &type));
}

TEST(DataTypeTest, SizesAndClasses) {
  EXPECT_EQ(DataTypeSize(DataType::kInt8), 1u);
  EXPECT_EQ(DataTypeSize(DataType::kUInt16), 2u);
  EXPECT_EQ(DataTypeSize(DataType::kFloat32), 4u);
  EXPECT_EQ(DataTypeSize(DataType::kFloat64), 8u);
  EXPECT_TRUE(DataTypeIsSigned(DataType::kInt8));
  EXPECT_FALSE(DataTypeIsSigned(DataType::kUInt64));
  EXPECT_TRUE(DataTypeIsFloat(DataType::kFloat32));
  EXPECT_TRUE(DataTypeIsInteger(DataType::kUInt8));
}

TEST(DataTypeTest, DispatchHitsEveryType) {
  int count = 0;
  for (int i = 0; i < kNumDataTypes; ++i) {
    DispatchDataType(static_cast<DataType>(i), [&](auto tag) {
      EXPECT_EQ(TypeTraits<decltype(tag)>::kType, static_cast<DataType>(i));
      ++count;
    });
  }
  EXPECT_EQ(count, kNumDataTypes);
}

TEST(ValueTest, TypeTagMatchesAlternative) {
  EXPECT_EQ(ValueType(Value(int32_t{5})), DataType::kInt32);
  EXPECT_EQ(ValueType(Value(3.5)), DataType::kFloat64);
  EXPECT_EQ(ValueType(Value(uint8_t{1})), DataType::kUInt8);
}

TEST(ValueTest, ToStringRendersByClass) {
  EXPECT_EQ(ValueToString(Value(int32_t{-5})), "-5");
  EXPECT_EQ(ValueToString(Value(uint64_t{5})), "5");
  EXPECT_EQ(ValueToString(Value(2.5)), "2.5");
}

TEST(ValueTest, CastExactSucceeds) {
  const auto casted = CastValue(Value(int64_t{5}), DataType::kInt8);
  ASSERT_TRUE(casted.ok());
  EXPECT_EQ(ValueType(*casted), DataType::kInt8);
  EXPECT_EQ(ValueAs<int>(*casted), 5);
}

TEST(ValueTest, CastOverflowFails) {
  EXPECT_FALSE(CastValue(Value(int64_t{300}), DataType::kInt8).ok());
  EXPECT_FALSE(CastValue(Value(int64_t{-1}), DataType::kUInt32).ok());
}

TEST(ValueTest, CastFractionLossFails) {
  EXPECT_FALSE(CastValue(Value(5.5), DataType::kInt32).ok());
  EXPECT_TRUE(CastValue(Value(5.0), DataType::kInt32).ok());
}

TEST(ValueTest, ParseNumericLiteral) {
  auto v = ParseNumericLiteral("42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(ValueType(*v), DataType::kInt64);
  v = ParseNumericLiteral("2.5");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(ValueType(*v), DataType::kFloat64);
  v = ParseNumericLiteral("1e3");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(ValueAs<double>(*v), 1000.0);
  EXPECT_FALSE(ParseNumericLiteral("abc").ok());
  EXPECT_FALSE(ParseNumericLiteral("").ok());
}

TEST(TableBuilderTest, RowWiseBuildsChunks) {
  TableBuilder builder(
      {{"a", DataType::kInt32}, {"b", DataType::kFloat64}}, 3);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(builder
                    .AppendRow({Value(int64_t{i}),
                                Value(static_cast<double>(i) / 2)})
                    .ok());
  }
  const TablePtr table = builder.Build();
  EXPECT_EQ(table->row_count(), 7u);
  EXPECT_EQ(table->chunk_count(), 3u);  // 3 + 3 + 1.
  EXPECT_EQ(table->chunk(0).row_count(), 3u);
  EXPECT_EQ(table->chunk(2).row_count(), 1u);
  EXPECT_EQ(ValueAs<int>(table->GetValue(0, {2, 0})), 6);
  EXPECT_DOUBLE_EQ(ValueAs<double>(table->GetValue(1, {1, 2})), 2.5);
}

TEST(TableBuilderTest, RejectsArityMismatch) {
  TableBuilder builder({{"a", DataType::kInt32}});
  EXPECT_FALSE(builder.AppendRow({Value(1), Value(2)}).ok());
}

TEST(TableBuilderTest, RejectsUnrepresentableValue) {
  TableBuilder builder({{"a", DataType::kInt8}});
  EXPECT_FALSE(builder.AppendRow({Value(int64_t{1000})}).ok());
  // The failed row must not corrupt the builder.
  ASSERT_TRUE(builder.AppendRow({Value(int64_t{5})}).ok());
  EXPECT_EQ(builder.Build()->row_count(), 1u);
}

TEST(TableBuilderTest, BulkChunkTypeChecked) {
  TableBuilder builder({{"a", DataType::kInt32}});
  AlignedVector<int64_t> wrong = {1, 2, 3};
  EXPECT_FALSE(
      builder
          .AddChunk({std::make_shared<ValueColumn<int64_t>>(std::move(wrong))})
          .ok());
  AlignedVector<int32_t> right = {1, 2, 3};
  EXPECT_TRUE(
      builder
          .AddChunk({std::make_shared<ValueColumn<int32_t>>(std::move(right))})
          .ok());
  EXPECT_EQ(builder.Build()->row_count(), 3u);
}

TEST(TableTest, ColumnLookup) {
  TableBuilder builder({{"a", DataType::kInt32}, {"b", DataType::kInt32}});
  ASSERT_TRUE(builder.AppendRow({Value(1), Value(2)}).ok());
  const TablePtr table = builder.Build();
  EXPECT_EQ(*table->ColumnIndex("b"), 1u);
  EXPECT_FALSE(table->ColumnIndex("zzz").ok());
  EXPECT_EQ(table->column_definition(0).name, "a");
}

TEST(TableTest, DictionaryEncodedColumnRoundTrips) {
  TableBuilder builder({{"a", DataType::kInt32}});
  builder.SetDictionaryEncoded(0);
  for (const int v : {5, 3, 5, 9, 3}) {
    ASSERT_TRUE(builder.AppendRow({Value(v)}).ok());
  }
  const TablePtr table = builder.Build();
  const BaseColumn& column = table->chunk(0).column(0);
  EXPECT_EQ(column.encoding(), ColumnEncoding::kDictionary);
  EXPECT_EQ(column.scan_type(), DataType::kUInt32);
  EXPECT_EQ(ValueAs<int>(column.GetValue(0)), 5);
  EXPECT_EQ(ValueAs<int>(column.GetValue(3)), 9);
}

}  // namespace
}  // namespace fts
