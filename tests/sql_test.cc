#include <gtest/gtest.h>

#include "fts/sql/lexer.h"
#include "fts/sql/parser.h"

namespace fts {
namespace {

TEST(LexerTest, TokenizesKeywordsCaseInsensitive) {
  const auto tokens = Tokenize("select COUNT from WhErE and between");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 7u);  // 6 + EOF.
  EXPECT_EQ((*tokens)[0].type, TokenType::kSelect);
  EXPECT_EQ((*tokens)[1].type, TokenType::kCount);
  EXPECT_EQ((*tokens)[2].type, TokenType::kFrom);
  EXPECT_EQ((*tokens)[3].type, TokenType::kWhere);
  EXPECT_EQ((*tokens)[4].type, TokenType::kAnd);
  EXPECT_EQ((*tokens)[5].type, TokenType::kBetween);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  const auto tokens = Tokenize("= <> != < <= > >= , * ( ) ; - +");
  ASSERT_TRUE(tokens.ok());
  const TokenType expected[] = {
      TokenType::kEq, TokenType::kNe,    TokenType::kNe,
      TokenType::kLt, TokenType::kLe,    TokenType::kGt,
      TokenType::kGe, TokenType::kComma, TokenType::kStar,
      TokenType::kLParen, TokenType::kRParen, TokenType::kSemicolon,
      TokenType::kMinus,  TokenType::kPlus,   TokenType::kEndOfInput};
  ASSERT_EQ(tokens->size(), std::size(expected));
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ((*tokens)[i].type, expected[i]) << i;
  }
}

TEST(LexerTest, Numbers) {
  const auto tokens = Tokenize("42 3.5 .25 1e3 2.5E-2");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i + 1 < tokens->size(); ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kNumber) << i;
  }
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[4].text, "2.5E-2");
}

TEST(LexerTest, PositionsRecorded) {
  const auto tokens = Tokenize("a  =  5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].position, 0u);
  EXPECT_EQ((*tokens)[1].position, 3u);
  EXPECT_EQ((*tokens)[2].position, 6u);
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("select @ from t").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(ParserTest, CountStarQuery) {
  const auto statement =
      ParseSelect("SELECT COUNT(*) FROM tbl WHERE a = 5 AND b = 2");
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  EXPECT_TRUE(statement->count_star);
  EXPECT_EQ(statement->table, "tbl");
  ASSERT_EQ(statement->predicates.size(), 2u);
  EXPECT_EQ(statement->predicates[0].column, "a");
  EXPECT_EQ(statement->predicates[0].op, CompareOp::kEq);
  EXPECT_EQ(ValueAs<int64_t>(statement->predicates[0].literal), 5);
  EXPECT_EQ(statement->predicates[1].column, "b");
}

TEST(ParserTest, ProjectionList) {
  const auto statement = ParseSelect("SELECT a, b, c FROM t;");
  ASSERT_TRUE(statement.ok());
  EXPECT_FALSE(statement->count_star);
  EXPECT_EQ(statement->columns,
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(statement->predicates.empty());
}

TEST(ParserTest, SelectStar) {
  const auto statement = ParseSelect("SELECT * FROM t WHERE x >= 3");
  ASSERT_TRUE(statement.ok());
  EXPECT_TRUE(statement->select_all);
  EXPECT_EQ(statement->predicates[0].op, CompareOp::kGe);
}

TEST(ParserTest, AllComparators) {
  const auto statement = ParseSelect(
      "SELECT COUNT(*) FROM t WHERE a = 1 AND b <> 2 AND c != 3 AND d < 4 "
      "AND e <= 5 AND f > 6 AND g >= 7");
  ASSERT_TRUE(statement.ok());
  const CompareOp expected[] = {CompareOp::kEq, CompareOp::kNe,
                                CompareOp::kNe, CompareOp::kLt,
                                CompareOp::kLe, CompareOp::kGt,
                                CompareOp::kGe};
  ASSERT_EQ(statement->predicates.size(), 7u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(statement->predicates[i].op, expected[i]) << i;
  }
}

TEST(ParserTest, BetweenDesugars) {
  const auto statement =
      ParseSelect("SELECT COUNT(*) FROM t WHERE a BETWEEN 3 AND 7");
  ASSERT_TRUE(statement.ok());
  ASSERT_EQ(statement->predicates.size(), 2u);
  EXPECT_EQ(statement->predicates[0].op, CompareOp::kGe);
  EXPECT_EQ(ValueAs<int64_t>(statement->predicates[0].literal), 3);
  EXPECT_EQ(statement->predicates[1].op, CompareOp::kLe);
  EXPECT_EQ(ValueAs<int64_t>(statement->predicates[1].literal), 7);
}

TEST(ParserTest, BetweenFollowedByAnd) {
  const auto statement = ParseSelect(
      "SELECT COUNT(*) FROM t WHERE a BETWEEN 3 AND 7 AND b = 1");
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  EXPECT_EQ(statement->predicates.size(), 3u);
}

TEST(ParserTest, NegativeAndFloatLiterals) {
  const auto statement =
      ParseSelect("SELECT COUNT(*) FROM t WHERE a = -5 AND b < 2.5");
  ASSERT_TRUE(statement.ok());
  EXPECT_EQ(ValueAs<int64_t>(statement->predicates[0].literal), -5);
  EXPECT_DOUBLE_EQ(ValueAs<double>(statement->predicates[1].literal), 2.5);
}

TEST(ParserTest, ErrorsCarryPositionContext) {
  const auto missing_from = ParseSelect("SELECT COUNT(*) tbl");
  ASSERT_FALSE(missing_from.ok());
  EXPECT_NE(missing_from.status().message().find("FROM"),
            std::string::npos);

  const auto bad_predicate = ParseSelect("SELECT * FROM t WHERE a ++ 5");
  ASSERT_FALSE(bad_predicate.ok());

  const auto trailing = ParseSelect("SELECT * FROM t WHERE a = 5 garbage");
  ASSERT_FALSE(trailing.ok());
}

TEST(ParserTest, RejectsMalformedProjection) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a, FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT COUNT(a) FROM t").ok());
}

TEST(ParserTest, StatementToStringRoundTrip) {
  const std::string sql =
      "SELECT COUNT(*) FROM tbl WHERE a = 5 AND b < 2";
  const auto statement = ParseSelect(sql);
  ASSERT_TRUE(statement.ok());
  const auto reparsed = ParseSelect(statement->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToString(), statement->ToString());
}

}  // namespace
}  // namespace fts
