// Tests for the obs tracing layer: span lifecycle and nesting, the
// two-gate fast path, worker-thread attribution, and the Chrome-trace
// JSON export (verified by round-tripping through an independent parser).

#include "fts/obs/trace.h"

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mini_json.h"

namespace fts::obs {
namespace {

using fts::testing::JsonValue;
using fts::testing::ParseJson;

// Every test detaches on exit so suites don't leak an active sink into
// each other.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    DetachTraceSink();
    SetTracingEnabled(true);
  }
};

TEST_F(TraceTest, SpanRecordsIntoAttachedSink) {
  TraceSink sink;
  AttachTraceSink(&sink);
  {
    TraceSpan span("unit_span", "test");
    EXPECT_TRUE(span.active());
  }
  DetachTraceSink();
  ASSERT_EQ(sink.size(), 1u);
  const TraceEvent event = sink.events()[0];
  EXPECT_STREQ(event.name, "unit_span");
  EXPECT_STREQ(event.category, "test");
  EXPECT_GT(event.start_ns, 0u);
}

TEST_F(TraceTest, NoSinkMeansInactive) {
  TraceSpan span("orphan", "test");
  EXPECT_FALSE(span.active());
}

TEST_F(TraceTest, DisabledGateWinsOverAttachedSink) {
  TraceSink sink;
  AttachTraceSink(&sink);
  SetTracingEnabled(false);
  {
    TraceSpan span("gated", "test");
    EXPECT_FALSE(span.active());
  }
  SetTracingEnabled(true);
  DetachTraceSink();
  EXPECT_EQ(sink.size(), 0u);
}

TEST_F(TraceTest, AttachReturnsPreviousSink) {
  TraceSink first, second;
  EXPECT_EQ(AttachTraceSink(&first), nullptr);
  EXPECT_EQ(ActiveTraceSink(), &first);
  EXPECT_EQ(AttachTraceSink(&second), &first);
  EXPECT_EQ(DetachTraceSink(), &second);
  EXPECT_EQ(ActiveTraceSink(), nullptr);
}

TEST_F(TraceTest, NestedSpansStayWithinParentWindow) {
  TraceSink sink;
  AttachTraceSink(&sink);
  {
    TraceSpan outer("outer", "test");
    {
      TraceSpan inner("inner", "test");
    }
  }
  DetachTraceSink();
  ASSERT_EQ(sink.size(), 2u);
  // Destruction order records inner first.
  const std::vector<TraceEvent> events = sink.events();
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns,
            outer.start_ns + outer.duration_ns);
  // Same thread: identical rank.
  EXPECT_EQ(inner.thread_rank, outer.thread_rank);
}

TEST_F(TraceTest, ExplicitFinishRecordsOnce) {
  TraceSink sink;
  AttachTraceSink(&sink);
  {
    TraceSpan span("finished", "test");
    span.Finish();
    EXPECT_FALSE(span.active());
    // Destructor must not double-record.
  }
  DetachTraceSink();
  EXPECT_EQ(sink.size(), 1u);
}

TEST_F(TraceTest, ThreadsGetDistinctRanks) {
  TraceSink sink;
  AttachTraceSink(&sink);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      SetCurrentThreadLabel("test worker " + std::to_string(t));
      TraceSpan span("thread_span", "test");
    });
  }
  for (std::thread& thread : threads) thread.join();
  DetachTraceSink();

  ASSERT_EQ(sink.size(), kThreads);
  std::set<uint32_t> ranks;
  for (const TraceEvent& event : sink.events()) {
    ranks.insert(event.thread_rank);
  }
  EXPECT_EQ(ranks.size(), kThreads);

  // Every recorded rank is labelled.
  const auto labels = ThreadLabels();
  for (const uint32_t rank : ranks) {
    const bool labelled =
        std::any_of(labels.begin(), labels.end(),
                    [rank](const auto& entry) {
                      return entry.first == rank &&
                             entry.second.rfind("test worker", 0) == 0;
                    });
    EXPECT_TRUE(labelled) << "rank " << rank << " has no label";
  }
}

TEST_F(TraceTest, ChromeTraceJsonRoundTrips) {
  TraceSink sink;
  AttachTraceSink(&sink);
  SetCurrentThreadLabel("roundtrip main");
  {
    TraceSpan span("with_args", "test");
    span.AddArg("rows", uint64_t{12345});
    span.AddArg("engine", "AVX-512 \"fused\"");
  }
  {
    TraceSpan span("plain", "test");
  }
  DetachTraceSink();

  const std::string json = sink.ToChromeTraceJson();
  const auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  size_t complete_events = 0;
  bool saw_thread_name = false;
  bool saw_args = false;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      EXPECT_EQ(event.Find("name")->string, "thread_name");
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      if (args->Find("name")->string == "roundtrip main") {
        saw_thread_name = true;
      }
      continue;
    }
    ASSERT_EQ(ph->string, "X");
    ++complete_events;
    ASSERT_NE(event.Find("ts"), nullptr);
    ASSERT_NE(event.Find("dur"), nullptr);
    ASSERT_NE(event.Find("tid"), nullptr);
    EXPECT_GE(event.Find("dur")->number, 0.0);
    if (event.Find("name")->string == "with_args") {
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->Find("rows")->number, 12345.0);
      // The escaped quote survives the round trip.
      EXPECT_EQ(args->Find("engine")->string, "AVX-512 \"fused\"");
      saw_args = true;
    }
  }
  EXPECT_EQ(complete_events, 2u);
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_args);
}

TEST_F(TraceTest, WriteChromeTraceProducesLoadableFile) {
  TraceSink sink;
  AttachTraceSink(&sink);
  {
    TraceSpan span("file_span", "test");
  }
  DetachTraceSink();

  const std::string path =
      ::testing::TempDir() + "/fts_trace_test_output.json";
  ASSERT_TRUE(sink.WriteChromeTrace(path).ok());

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  const auto parsed = ParseJson(contents);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->Find("traceEvents"), nullptr);
}

TEST_F(TraceTest, ConcurrentSpansAllRecorded) {
  TraceSink sink;
  AttachTraceSink(&sink);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("burst", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  DetachTraceSink();
  EXPECT_EQ(sink.size(), kThreads * kSpansPerThread);
}

}  // namespace
}  // namespace fts::obs
