#include <gtest/gtest.h>

#include "fts/common/cpu_info.h"
#include "fts/db/database.h"
#include "fts/storage/data_generator.h"
#include "fts/storage/table_builder.h"

namespace fts {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScanTableOptions options;
    options.rows = 10000;
    options.selectivities = {0.1, 0.5};
    options.seed = 71;
    generated_ = MakeScanTable(options);
    ASSERT_TRUE(db_.RegisterTable("tbl", generated_.table).ok());
  }

  Database db_;
  GeneratedScanTable generated_;
};

TEST_F(DatabaseTest, RegisterAndDrop) {
  EXPECT_EQ(db_.TableNames(), std::vector<std::string>{"tbl"});
  EXPECT_TRUE(db_.GetTable("tbl").ok());
  EXPECT_EQ(db_.RegisterTable("tbl", generated_.table).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(db_.DropTable("tbl").ok());
  EXPECT_EQ(db_.DropTable("tbl").code(), StatusCode::kNotFound);
}

TEST_F(DatabaseTest, CountStarMatchesGroundTruth) {
  const auto result =
      db_.Query("SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result->count, generated_.stage_matches.back());
}

TEST_F(DatabaseTest, EveryEngineSameAnswer) {
  const std::string sql =
      "SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2";
  const uint64_t expected = generated_.stage_matches.back();
  for (const ScanEngine engine :
       {ScanEngine::kSisdNoVec, ScanEngine::kSisdAutoVec,
        ScanEngine::kScalarFused, ScanEngine::kAvx2Fused128,
        ScanEngine::kAvx512Fused128, ScanEngine::kAvx512Fused256,
        ScanEngine::kAvx512Fused512, ScanEngine::kBlockwise}) {
    if (!ScanEngineAvailable(engine)) continue;
    Database::QueryOptions options;
    options.engine = engine;
    const auto result = db_.Query(sql, options);
    ASSERT_TRUE(result.ok())
        << ScanEngineToString(engine) << ": " << result.status().ToString();
    EXPECT_EQ(*result->count, expected) << ScanEngineToString(engine);
  }
}

TEST_F(DatabaseTest, JitEngineEndToEnd) {
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    GTEST_SKIP() << "AVX-512 not available";
  }
  Database::QueryOptions options;
  options.engine = ScanEngine::kJit;
  const auto result = db_.Query(
      "SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result->count, generated_.stage_matches.back());
}

TEST_F(DatabaseTest, ProjectionReturnsMatchingRows) {
  const auto result =
      db_.Query("SELECT c0, c1 FROM tbl WHERE c0 = 5 AND c1 = 2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->RowCountOut(), generated_.stage_matches.back());
  for (size_t r = 0; r < result->RowCountOut(); ++r) {
    EXPECT_EQ(ValueAs<int>(result->ValueAt(r, 0)), 5);
    EXPECT_EQ(ValueAs<int>(result->ValueAt(r, 1)), 2);
  }
}

TEST_F(DatabaseTest, UnknownTableAndColumn) {
  EXPECT_EQ(db_.Query("SELECT COUNT(*) FROM nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      db_.Query("SELECT COUNT(*) FROM tbl WHERE nope = 1").status().code(),
      StatusCode::kNotFound);
}

TEST_F(DatabaseTest, ParseErrorsPropagate) {
  EXPECT_EQ(db_.Query("SELEC COUNT(*) FROM tbl").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DatabaseTest, ExplainShowsFusionDecision) {
  const std::string sql =
      "SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2";
  const auto fused = db_.Explain(sql);
  ASSERT_TRUE(fused.ok());
  EXPECT_NE(fused->find("FusedScan"), std::string::npos);

  Database::QueryOptions options;
  options.engine = ScanEngine::kSisdNoVec;
  const auto sisd = db_.Explain(sql, options);
  ASSERT_TRUE(sisd.ok());
  EXPECT_EQ(sisd->find("FusedScan: "), std::string::npos);
}

TEST_F(DatabaseTest, OptimizerToggle) {
  Database::QueryOptions options;
  options.optimize = false;
  const auto result = db_.Query(
      "SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->count, generated_.stage_matches.back());
}

TEST_F(DatabaseTest, BetweenQuery) {
  TableBuilder builder({{"v", DataType::kInt32}});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(builder.AppendRow({Value(i)}).ok());
  }
  ASSERT_TRUE(db_.RegisterTable("r", builder.Build()).ok());
  const auto result =
      db_.Query("SELECT COUNT(*) FROM r WHERE v BETWEEN 10 AND 19");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->count, 10u);
}

TEST_F(DatabaseTest, FloatColumnsWork) {
  TableBuilder builder({{"x", DataType::kFloat64}});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(builder.AppendRow({Value(i / 2.0)}).ok());
  }
  ASSERT_TRUE(db_.RegisterTable("f", builder.Build()).ok());
  const auto result = db_.Query("SELECT COUNT(*) FROM f WHERE x < 2.5");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->count, 5u);
}

TEST_F(DatabaseTest, QueryResultToStringRenders) {
  const auto result = db_.Query("SELECT COUNT(*) FROM tbl WHERE c0 = 5");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->ToString().find("COUNT(*)"), std::string::npos);
}

}  // namespace
}  // namespace fts
