// Aggregate-pushdown equivalence suite. The fused aggregate kernels fold
// survivors straight out of the compare mask — this file pins the edges
// where that fold differs most from the materialize-then-aggregate path:
//
//   * widening: SUM over INT32_MAX/UINT32_MAX-heavy columns must
//     accumulate in 64-bit lanes (a 32-bit lane sum would wrap long
//     before the finalizer sees it);
//   * mask extremes: 64-row runs of all-match / no-match rows drive the
//     16-lane kernels through all-ones and all-zero survivor masks, and
//     chunk-aligned runs drive the zone-map shortcut paths (impossible
//     chunks, tautological chunks answered without a scan);
//   * encodings: dictionary and bit-packed aggregate columns take the
//     scalar decode fold inside the SIMD kernels and demote the JIT rung;
//   * a differential fuzzer arm: random tables/predicates/terms, every
//     engine and the 1/2/4-thread morsel path against the
//     materialize-then-fold scalar reference (FoldRowScalar over the SISD
//     position list — the semantic reference named in agg_spec.h).
//
// Integer accumulators must match the reference bit-for-bit; float SUMs
// may differ in association (vector tree-fold vs scalar left fold), so
// sum_double alone gets a relative tolerance. Per engine, the parallel
// path must be byte-identical to the serial path at every thread count.
//
// Failures print a replay command; FTS_TEST_SEED=<seed> reruns one case.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "fts/common/cpu_info.h"
#include "fts/common/random.h"
#include "fts/common/string_util.h"
#include "fts/db/database.h"
#include "fts/exec/parallel_scan.h"
#include "fts/jit/jit_scan_engine.h"
#include "fts/scan/table_scan.h"
#include "fts/simd/agg_spec.h"
#include "fts/storage/compare_op.h"
#include "fts/storage/table_builder.h"
#include "test_util.h"

namespace fts {
namespace {

constexpr const char* kBinary = "agg_pushdown_test";

constexpr ScanEngine kAllEngines[] = {
    ScanEngine::kSisdNoVec,     ScanEngine::kSisdAutoVec,
    ScanEngine::kScalarFused,   ScanEngine::kAvx2Fused128,
    ScanEngine::kAvx512Fused128, ScanEngine::kAvx512Fused256,
    ScanEngine::kAvx512Fused512, ScanEngine::kBlockwise,
};

// Materialize-then-fold reference: SISD position list, then FoldRowScalar
// per matching row, partials merged in chunk order — the exact dataflow
// the pushdown replaces.
TableScanner::AggResult FoldReference(const TableScanner& scanner) {
  const auto matches = scanner.Execute(ScanEngine::kSisdNoVec);
  FTS_CHECK(matches.ok());
  TableScanner::AggResult result;
  result.accumulators.resize(scanner.num_agg_terms());
  result.matched = matches->TotalMatches();
  for (const auto& chunk : matches->chunks) {
    const TableScanner::ChunkPlan& plan =
        scanner.chunk_plans()[chunk.chunk_id];
    std::vector<AggAccumulator> partial(scanner.num_agg_terms());
    for (const ChunkOffset position : chunk.positions) {
      for (size_t t = 0; t < plan.agg_terms.size(); ++t) {
        FoldRowScalar(plan.agg_terms[t], position, partial[t]);
      }
    }
    for (size_t t = 0; t < partial.size(); ++t) {
      result.accumulators[t].Merge(partial[t]);
    }
  }
  return result;
}

// Field-by-field accumulator comparison. Integer fields (count, sum_bits,
// min/max in all three domains) must be exact on every path; sum_double is
// the one field where fold association legitimately differs between the
// scalar reference and the vector tree-folds.
void ExpectAggEqual(const TableScanner::AggResult& reference,
                    const TableScanner::AggResult& got,
                    const std::string& context) {
  EXPECT_EQ(reference.matched, got.matched) << context;
  ASSERT_EQ(reference.accumulators.size(), got.accumulators.size())
      << context;
  for (size_t t = 0; t < reference.accumulators.size(); ++t) {
    const AggAccumulator& want = reference.accumulators[t];
    const AggAccumulator& have = got.accumulators[t];
    const std::string where = StrFormat("%s term=%zu", context.c_str(), t);
    EXPECT_EQ(want.count, have.count) << where;
    EXPECT_EQ(want.sum_bits, have.sum_bits) << where;
    EXPECT_EQ(want.min_i, have.min_i) << where;
    EXPECT_EQ(want.max_i, have.max_i) << where;
    EXPECT_EQ(want.min_u, have.min_u) << where;
    EXPECT_EQ(want.max_u, have.max_u) << where;
    EXPECT_EQ(want.min_d, have.min_d) << where;
    EXPECT_EQ(want.max_d, have.max_d) << where;
    const double scale =
        std::max({1.0, std::abs(want.sum_double), std::abs(have.sum_double)});
    EXPECT_NEAR(want.sum_double, have.sum_double, 1e-9 * scale) << where;
  }
}

// Byte-identical comparison for the thread-determinism guarantee: same
// engine, different worker counts, no tolerance anywhere.
void ExpectAggBytesIdentical(const TableScanner::AggResult& a,
                             const TableScanner::AggResult& b,
                             const std::string& context) {
  EXPECT_EQ(a.matched, b.matched) << context;
  ASSERT_EQ(a.accumulators.size(), b.accumulators.size()) << context;
  for (size_t t = 0; t < a.accumulators.size(); ++t) {
    EXPECT_EQ(std::memcmp(&a.accumulators[t], &b.accumulators[t],
                          sizeof(AggAccumulator)),
              0)
        << context << " term=" << t;
  }
}

// SUM over columns saturated with 32-bit extremes: the total exceeds any
// 32-bit lane by orders of magnitude, so a kernel summing in lane width
// would wrap visibly. Covers the signed (i32 sign-extended into i64
// lanes) and unsigned (u32 zero-extended) widening rules.
TEST(AggPushdownEdgeTest, SumWidensPastThirtyTwoBits) {
  constexpr size_t kRows = 4103;  // Awkward: 16-lane tail of 7.
  TableBuilder builder({{"flag", DataType::kInt32},
                        {"big", DataType::kInt32},
                        {"ubig", DataType::kUInt32}});
  size_t matched = 0;
  for (size_t r = 0; r < kRows; ++r) {
    const int32_t flag = static_cast<int32_t>(r % 2);
    matched += flag == 1;
    ASSERT_TRUE(builder
                    .AppendRow({Value(flag), Value(INT32_MAX),
                                Value(UINT32_MAX)})
                    .ok());
  }
  const TablePtr table = builder.Build();

  ScanSpec spec;
  spec.predicates = {{"flag", CompareOp::kEq, Value(int32_t{1})}};
  spec.aggregates = {{AggOp::kSum, "big"}, {AggOp::kSum, "ubig"},
                     {AggOp::kMax, "big"}};
  const auto scanner = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(scanner.ok());

  const int64_t expected_sum =
      static_cast<int64_t>(matched) * INT32_MAX;
  const uint64_t expected_usum =
      static_cast<uint64_t>(matched) * UINT32_MAX;
  ASSERT_GT(expected_sum, int64_t{INT32_MAX});  // Wraps a 32-bit lane.

  for (const ScanEngine engine : kAllEngines) {
    if (!ScanEngineAvailable(engine)) continue;
    const auto result = scanner->ExecuteAggregate(engine);
    ASSERT_TRUE(result.ok()) << ScanEngineToString(engine);
    EXPECT_EQ(result->matched, matched) << ScanEngineToString(engine);
    EXPECT_EQ(static_cast<int64_t>(result->accumulators[0].sum_bits),
              expected_sum)
        << ScanEngineToString(engine);
    EXPECT_EQ(result->accumulators[1].sum_bits, expected_usum)
        << ScanEngineToString(engine);
    EXPECT_EQ(result->accumulators[2].max_i, int64_t{INT32_MAX})
        << ScanEngineToString(engine);
  }
}

// 64-row runs of all-match / no-match rows inside one chunk: every 16-lane
// survivor mask the kernels see is either all-ones or all-zero, the two
// extremes of the masked fold (zone maps cannot drop the stage — the
// chunk holds both values).
TEST(AggPushdownEdgeTest, ZeroAndFullSurvivorMasks) {
  constexpr size_t kRows = 1024;
  TableBuilder builder({{"c0", DataType::kInt32}, {"v", DataType::kInt32}});
  int64_t expected_sum = 0;
  size_t matched = 0;
  for (size_t r = 0; r < kRows; ++r) {
    const int32_t c0 = (r / 64) % 2 == 0 ? 1 : 0;
    const int32_t v = static_cast<int32_t>(r);
    if (c0 == 1) {
      expected_sum += v;
      ++matched;
    }
    ASSERT_TRUE(builder.AppendRow({Value(c0), Value(v)}).ok());
  }
  const TablePtr table = builder.Build();

  ScanSpec spec;
  spec.predicates = {{"c0", CompareOp::kEq, Value(int32_t{1})}};
  spec.aggregates = {{AggOp::kSum, "v"}, {AggOp::kMin, "v"},
                     {AggOp::kMax, "v"}, {AggOp::kCount, ""}};
  const auto scanner = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(scanner.ok());

  for (const ScanEngine engine : kAllEngines) {
    if (!ScanEngineAvailable(engine)) continue;
    const auto result = scanner->ExecuteAggregate(engine);
    ASSERT_TRUE(result.ok()) << ScanEngineToString(engine);
    EXPECT_EQ(result->matched, matched) << ScanEngineToString(engine);
    EXPECT_EQ(static_cast<int64_t>(result->accumulators[0].sum_bits),
              expected_sum)
        << ScanEngineToString(engine);
    EXPECT_EQ(result->accumulators[1].min_i, 0) << ScanEngineToString(engine);
    EXPECT_EQ(result->accumulators[2].max_i, 959)  // Last row of run 14.
        << ScanEngineToString(engine);
    EXPECT_EQ(result->accumulators[3].count, matched)
        << ScanEngineToString(engine);
  }
}

// Chunk-aligned all-match / no-match runs: zone maps mark the no-match
// chunks impossible and drop the conjunct from the all-match chunks. The
// MIN/MAX/COUNT-only spec is then answered per chunk from zone maps alone
// (agg_zone_shortcut); adding a SUM forces the stage-free scan through
// the kernels' num_stages == 0 path. Both must agree with the reference.
TEST(AggPushdownEdgeTest, ZoneShortcutAndStageFreeChunks) {
  constexpr size_t kChunkRows = 128;
  constexpr size_t kChunks = 8;
  TableBuilder builder({{"c0", DataType::kInt32}, {"v", DataType::kInt32}},
                       kChunkRows);
  for (size_t r = 0; r < kChunkRows * kChunks; ++r) {
    const int32_t c0 = (r / kChunkRows) % 2 == 0 ? 1 : 0;
    ASSERT_TRUE(
        builder.AppendRow({Value(c0), Value(static_cast<int32_t>(r))}).ok());
  }
  const TablePtr table = builder.Build();

  for (const bool with_sum : {false, true}) {
    ScanSpec spec;
    spec.predicates = {{"c0", CompareOp::kEq, Value(int32_t{1})}};
    spec.aggregates = {{AggOp::kMin, "v"}, {AggOp::kMax, "v"},
                       {AggOp::kCount, ""}};
    if (with_sum) spec.aggregates.push_back({AggOp::kSum, "v"});
    const auto scanner = TableScanner::Prepare(table, spec);
    ASSERT_TRUE(scanner.ok());

    // Zone maps prove every chunk one way or the other.
    size_t impossible = 0, shortcut = 0;
    for (const TableScanner::ChunkPlan& plan : scanner->chunk_plans()) {
      impossible += plan.impossible;
      shortcut += plan.agg_zone_shortcut;
    }
    EXPECT_EQ(impossible, kChunks / 2);
    // SUM disables the shortcut (zone maps hold no sums); without it every
    // runnable chunk is answered from its zone map.
    EXPECT_EQ(shortcut, with_sum ? 0u : kChunks / 2);

    const TableScanner::AggResult reference = FoldReference(*scanner);
    for (const ScanEngine engine : kAllEngines) {
      if (!ScanEngineAvailable(engine)) continue;
      const auto result = scanner->ExecuteAggregate(engine);
      ASSERT_TRUE(result.ok()) << ScanEngineToString(engine);
      ExpectAggEqual(reference, *result,
                     StrFormat("%s with_sum=%d", ScanEngineToString(engine),
                               with_sum));
    }
  }
}

// Dictionary-encoded and bit-packed aggregate columns: the SIMD kernels
// fold these through the scalar decode path, and the JIT rung must refuse
// the signature and let the ladder demote — with identical results.
TEST(AggPushdownEdgeTest, DictionaryAndBitPackedTerms) {
  constexpr size_t kRows = 777;
  TableBuilder builder({{"c0", DataType::kInt32},
                        {"dict", DataType::kInt64},
                        {"packed", DataType::kInt32}},
                       /*chunk_size=*/256);
  builder.SetDictionaryEncoded(1);
  builder.SetBitPacked(2);
  Xoshiro256 rng(0xD1C7);
  for (size_t r = 0; r < kRows; ++r) {
    ASSERT_TRUE(
        builder
            .AppendRow({Value(static_cast<int32_t>(rng.NextBounded(3))),
                        Value(static_cast<int64_t>(rng.NextBounded(5)) *
                                  1000000007LL -
                              2000000014LL),
                        Value(static_cast<int32_t>(rng.NextBounded(7)))})
            .ok());
  }
  const TablePtr table = builder.Build();

  ScanSpec spec;
  spec.predicates = {{"c0", CompareOp::kLe, Value(int32_t{1})}};
  spec.aggregates = {{AggOp::kSum, "dict"}, {AggOp::kMin, "dict"},
                     {AggOp::kSum, "packed"}, {AggOp::kMax, "packed"}};
  const auto scanner = TableScanner::Prepare(table, spec);
  ASSERT_TRUE(scanner.ok());

  const TableScanner::AggResult reference = FoldReference(*scanner);
  ASSERT_GT(reference.matched, 0u);
  for (const ScanEngine engine : kAllEngines) {
    if (!ScanEngineAvailable(engine)) continue;
    const auto result = scanner->ExecuteAggregate(engine);
    ASSERT_TRUE(result.ok()) << ScanEngineToString(engine);
    ExpectAggEqual(reference, *result, ScanEngineToString(engine));
  }

#if !defined(__SANITIZE_THREAD__)
  // The JIT engine ladder-demotes the whole scan (generated aggregate
  // loops only handle plain terms) but must still return the same result.
  if (GetCpuFeatures().HasFusedScanAvx512()) {
    JitScanEngine engine(512);
    ExecutionReport report;
    const auto result = engine.ExecuteAggregate(table, spec, &report);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectAggEqual(reference, *result, "jit512(dict/packed)");
    EXPECT_TRUE(report.degraded) << report.ToString();
  }
#endif
}

// ---------------------------------------------------------------------
// Differential fuzzer arm.
// ---------------------------------------------------------------------

constexpr size_t kAwkwardRows[] = {1, 2, 7, 15, 16, 17, 31, 33,
                                   63, 64, 65, 100, 127, 129, 1000};

// `for_data` excludes the huge float magnitudes from generated *rows*:
// summing ±1e300 absorbs every small addend, so any fold-association
// change (scalar left fold vs SIMD tree fold) shifts the total by the
// absorbed values and no principled tolerance exists. Data restricted to
// halves keeps every double sum exact, making cross-engine comparison
// meaningful; predicate literals still draw the huge edges.
Value RandomLiteral(DataType type, Xoshiro256& rng, bool for_data = false) {
  const bool boundary = rng.NextBounded(8) == 0;
  const int64_t small = static_cast<int64_t>(rng.NextBounded(20)) - 10;
  switch (type) {
    case DataType::kInt32:
      if (boundary) {
        constexpr int32_t kEdges[] = {INT32_MIN, INT32_MIN + 1, -1, 0,
                                      INT32_MAX - 1, INT32_MAX};
        return Value(kEdges[rng.NextBounded(6)]);
      }
      return Value(static_cast<int32_t>(small));
    case DataType::kInt64:
      if (boundary) {
        constexpr int64_t kEdges[] = {INT64_MIN, INT64_MIN + 1, -1, 0,
                                      INT64_MAX - 1, INT64_MAX};
        return Value(kEdges[rng.NextBounded(6)]);
      }
      return Value(small * 1000000007LL);
    case DataType::kUInt32:
      if (boundary) {
        constexpr uint32_t kEdges[] = {0, 1, UINT32_MAX - 1, UINT32_MAX};
        return Value(kEdges[rng.NextBounded(4)]);
      }
      return Value(static_cast<uint32_t>(small + 10));
    case DataType::kFloat64:
      if (boundary && !for_data) {
        constexpr double kEdges[] = {-1e300, -0.0, 0.0, 1e300};
        return Value(kEdges[rng.NextBounded(4)]);
      }
      if (boundary) return Value(rng.NextBounded(2) == 0 ? -0.0 : 0.0);
      return Value(static_cast<double>(small) / 2.0);
    default:
      return Value(static_cast<int32_t>(small));
  }
}

struct FuzzCase {
  TablePtr table;
  ScanSpec spec;
};

// Random table + predicates + aggregate terms. Mirrors the structure of
// differential_test's generator, then draws 1-4 terms over random columns
// (COUNT terms column-less) — mixed encodings included, so dictionary and
// bit-packed folds and the JIT demotion path all come up across seeds.
FuzzCase MakeAggCase(uint64_t seed) {
  Xoshiro256 rng(seed);
  FuzzCase result;

  const size_t rows = rng.NextBounded(2) == 0
                          ? kAwkwardRows[rng.NextBounded(
                                std::size(kAwkwardRows))]
                          : rng.NextBounded(4000) + 1;
  const size_t num_columns = rng.NextBounded(4) + 1;
  const DataType kTypes[] = {DataType::kInt32, DataType::kInt64,
                             DataType::kUInt32, DataType::kFloat64};

  std::vector<ColumnDefinition> schema;
  for (size_t c = 0; c < num_columns; ++c) {
    schema.push_back({StrFormat("c%zu", c), kTypes[rng.NextBounded(4)]});
  }
  const size_t chunk_size = rng.NextBounded(2) == 0
                                ? rng.NextBounded(rows) + 1
                                : rows;
  TableBuilder builder(schema, chunk_size);
  std::vector<bool> narrow(num_columns, false);
  for (size_t c = 0; c < num_columns; ++c) {
    const uint64_t encoding = rng.NextBounded(4);
    if (encoding == 0) builder.SetDictionaryEncoded(c);
    if (encoding == 1) builder.SetBitPacked(c);
    // Narrow columns keep chunk dictionaries tiny so zone maps routinely
    // prune chunks or drop conjuncts — the shortcut paths above, now under
    // random shapes.
    narrow[c] = rng.NextBounded(3) == 0;
  }

  std::vector<Value> row(num_columns, Value(int32_t{0}));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < num_columns; ++c) {
      if (narrow[c]) {
        const int64_t pick = static_cast<int64_t>(rng.NextBounded(3)) * 5 - 5;
        switch (schema[c].type) {
          case DataType::kInt64:
            row[c] = Value(pick * 1000000007LL);
            break;
          case DataType::kUInt32:
            row[c] = Value(static_cast<uint32_t>(pick + 5));
            break;
          case DataType::kFloat64:
            row[c] = Value(static_cast<double>(pick) / 2.0);
            break;
          default:
            row[c] = Value(static_cast<int32_t>(pick));
            break;
        }
      } else {
        row[c] = RandomLiteral(schema[c].type, rng, /*for_data=*/true);
      }
    }
    FTS_CHECK(builder.AppendRow(row).ok());
  }
  result.table = builder.Build();

  const size_t num_predicates = rng.NextBounded(4);  // 0-3: no-WHERE too.
  for (size_t p = 0; p < num_predicates; ++p) {
    const size_t column = rng.NextBounded(num_columns);
    PredicateSpec predicate;
    predicate.column = schema[column].name;
    predicate.op = kAllCompareOps[rng.NextBounded(6)];
    predicate.value = RandomLiteral(schema[column].type, rng);
    result.spec.predicates.push_back(predicate);
  }

  const size_t num_terms = rng.NextBounded(4) + 1;
  constexpr AggOp kOps[] = {AggOp::kCount, AggOp::kSum, AggOp::kMin,
                            AggOp::kMax};
  for (size_t t = 0; t < num_terms; ++t) {
    const AggOp op = kOps[rng.NextBounded(4)];
    AggregateSpec term;
    term.op = op;
    if (op != AggOp::kCount) {
      term.column = schema[rng.NextBounded(num_columns)].name;
    }
    result.spec.aggregates.push_back(term);
  }
  return result;
}

class AggPushdownDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

// Every static engine's pushed-down accumulators match the
// materialize-then-fold reference.
TEST_P(AggPushdownDifferentialTest, EnginesMatchMaterializeReference) {
  const uint64_t seed = GetParam();
  const FuzzCase fuzz = MakeAggCase(seed);
  const auto scanner = TableScanner::Prepare(fuzz.table, fuzz.spec);
  if (!scanner.ok()) return;  // Non-representable literal.

  const TableScanner::AggResult reference = FoldReference(*scanner);
  for (const ScanEngine engine : kAllEngines) {
    if (!ScanEngineAvailable(engine)) continue;
    const auto result = scanner->ExecuteAggregate(engine);
    ASSERT_TRUE(result.ok())
        << ScanEngineToString(engine) << ": " << result.status().ToString()
        << "\n" << testing::ReplayCommand(kBinary, seed);
    ExpectAggEqual(reference, *result,
                   StrFormat("%s seed=%llu spec=%s\n%s",
                             ScanEngineToString(engine),
                             static_cast<unsigned long long>(seed),
                             fuzz.spec.ToString().c_str(),
                             testing::ReplayCommand(kBinary, seed).c_str()));
  }
}

// The morsel-driven aggregate path is byte-identical to the serial path
// for the same engine at 1/2/4 threads, and matches the reference.
TEST_P(AggPushdownDifferentialTest, ParallelPathByteIdentical) {
  const uint64_t seed = GetParam();
  const FuzzCase fuzz = MakeAggCase(seed);
  const auto scanner = TableScanner::Prepare(fuzz.table, fuzz.spec);
  if (!scanner.ok()) return;

  const TableScanner::AggResult reference = FoldReference(*scanner);
  const ScanEngine engines[] = {
      ScanEngine::kScalarFused,
      GetCpuFeatures().HasFusedScanAvx512() ? ScanEngine::kAvx512Fused512
                                            : ScanEngine::kSisdAutoVec};
  for (const ScanEngine engine : engines) {
    const auto serial = scanner->ExecuteAggregate(engine);
    ASSERT_TRUE(serial.ok()) << testing::ReplayCommand(kBinary, seed);
    ExpectAggEqual(reference, *serial,
                   StrFormat("serial(%s) seed=%llu\n%s",
                             ScanEngineToString(engine),
                             static_cast<unsigned long long>(seed),
                             testing::ReplayCommand(kBinary, seed).c_str()));
    for (const int threads : {1, 2, 4}) {
      ParallelScanOptions options;
      options.requested = {engine, 0};
      options.fallback = FallbackPolicy::kStrict;
      options.threads = threads;
      ExecutionReport report;
      const auto parallel =
          ExecuteParallelScanAggregate(*scanner, options, &report);
      ASSERT_TRUE(parallel.ok())
          << parallel.status().ToString() << "\n"
          << testing::ReplayCommand(kBinary, seed);
      ExpectAggBytesIdentical(
          *serial, *parallel,
          StrFormat("parallel(%s, threads=%d) seed=%llu spec=%s\n%s",
                    ScanEngineToString(engine), threads,
                    static_cast<unsigned long long>(seed),
                    fuzz.spec.ToString().c_str(),
                    testing::ReplayCommand(kBinary, seed).c_str()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggPushdownDifferentialTest,
                         ::testing::ValuesIn(testing::SeedRange(1, 49)));

// JIT rungs over a handful of seeds (one compiler invocation per distinct
// signature). Skipped under TSan: dlopen'd operators are uninstrumented.
class JitAggDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JitAggDifferentialTest, JitMatchesMaterializeReference) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "JIT-compiled code is not TSan-instrumented";
#endif
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    GTEST_SKIP() << "AVX-512 not available";
  }
  const uint64_t seed = GetParam();
  const FuzzCase fuzz = MakeAggCase(seed);
  const auto scanner = TableScanner::Prepare(fuzz.table, fuzz.spec);
  if (!scanner.ok()) return;

  const TableScanner::AggResult reference = FoldReference(*scanner);
  JitScanEngine engine(512);
  const auto serial = engine.ExecuteAggregate(fuzz.table, fuzz.spec);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString() << "\n"
                           << testing::ReplayCommand(kBinary, seed);
  ExpectAggEqual(reference, *serial,
                 StrFormat("jit512 seed=%llu spec=%s\n%s",
                           static_cast<unsigned long long>(seed),
                           fuzz.spec.ToString().c_str(),
                           testing::ReplayCommand(kBinary, seed).c_str()));

  for (const int threads : {2, 4}) {
    ParallelScanOptions options;
    options.requested = {ScanEngine::kJit, 512};
    options.threads = threads;
    const auto parallel = ExecuteParallelScanAggregate(*scanner, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString() << "\n"
                               << testing::ReplayCommand(kBinary, seed);
    ExpectAggEqual(reference, *parallel,
                   StrFormat("parallel(jit512, threads=%d) seed=%llu\n%s",
                             threads,
                             static_cast<unsigned long long>(seed),
                             testing::ReplayCommand(kBinary, seed).c_str()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitAggDifferentialTest,
                         ::testing::ValuesIn(testing::SeedRange(200, 204)));

// Database-level differential: the full SQL path with pushdown on vs off
// renders value-identical rows for integer aggregates (the two arms share
// finalization types by design).
TEST(AggPushdownDatabaseTest, PushdownMatchesMaterializePath) {
  Database db;
  TableBuilder builder({{"k", DataType::kInt32}, {"v", DataType::kInt64}},
                       /*chunk_size=*/97);
  Xoshiro256 rng(0xDB5);
  for (size_t r = 0; r < 1000; ++r) {
    ASSERT_TRUE(
        builder
            .AppendRow({Value(static_cast<int32_t>(rng.NextBounded(100))),
                        Value(static_cast<int64_t>(rng.NextBounded(1u << 30)) -
                              (1 << 29))})
            .ok());
  }
  ASSERT_TRUE(db.RegisterTable("t", builder.Build()).ok());

  for (const char* sql :
       {"SELECT SUM(v), MIN(v), MAX(v), AVG(v), COUNT(*) FROM t WHERE k < 50",
        "SELECT SUM(v), COUNT(*) FROM t",
        "SELECT MIN(k), MAX(k) FROM t WHERE v >= 0 AND k >= 10"}) {
    Database::QueryOptions off;
    off.aggregate_pushdown = false;
    const auto expected = db.Query(sql, off);
    ASSERT_TRUE(expected.ok()) << sql;
    EXPECT_FALSE(expected->execution_report.aggregate_pushdown);

    for (const int threads : {1, 2, 4}) {
      Database::QueryOptions on;
      on.threads = threads;
      const auto result = db.Query(sql, on);
      ASSERT_TRUE(result.ok()) << sql;
      EXPECT_TRUE(result->execution_report.aggregate_pushdown) << sql;
      ASSERT_EQ(result->rows.size(), 1u);
      ASSERT_EQ(result->rows[0].size(), expected->rows[0].size());
      for (size_t i = 0; i < result->rows[0].size(); ++i) {
        EXPECT_EQ(ValueToString(result->rows[0][i]),
                  ValueToString(expected->rows[0][i]))
            << sql << " column " << i << " threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace fts
