#include <gtest/gtest.h>

#include "fts/common/random.h"
#include "fts/storage/data_generator.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/table_statistics.h"
#include "fts/storage/value_column.h"

namespace fts {
namespace {

TablePtr MakeInt32Table(AlignedVector<int32_t> a, AlignedVector<int32_t> b,
                        bool dictionary = false) {
  TableBuilder builder({{"a", DataType::kInt32}, {"b", DataType::kInt32}});
  if (dictionary) {
    builder.SetDictionaryEncoded(0);
    builder.SetDictionaryEncoded(1);
    for (size_t i = 0; i < a.size(); ++i) {
      FTS_CHECK(builder.AppendRow({Value(a[i]), Value(b[i])}).ok());
    }
    return builder.Build();
  }
  std::vector<ColumnPtr> columns = {
      std::make_shared<ValueColumn<int32_t>>(std::move(a)),
      std::make_shared<ValueColumn<int32_t>>(std::move(b))};
  FTS_CHECK(builder.AddChunk(std::move(columns)).ok());
  return builder.Build();
}

TEST(TableStatisticsTest, MinMaxExact) {
  const TablePtr table =
      MakeInt32Table({5, -3, 9, 0}, {100, 100, 100, 100});
  const TableStatistics stats = TableStatistics::Compute(*table);
  EXPECT_DOUBLE_EQ(stats.column(0).min, -3.0);
  EXPECT_DOUBLE_EQ(stats.column(0).max, 9.0);
  EXPECT_DOUBLE_EQ(stats.column(1).min, 100.0);
  EXPECT_DOUBLE_EQ(stats.column(1).max, 100.0);
  EXPECT_EQ(stats.row_count(), 4u);
}

TEST(TableStatisticsTest, DictionaryDistinctExact) {
  const TablePtr table =
      MakeInt32Table({1, 2, 2, 3, 3, 3}, {7, 7, 7, 7, 7, 7},
                     /*dictionary=*/true);
  const TableStatistics stats = TableStatistics::Compute(*table);
  EXPECT_DOUBLE_EQ(stats.column(0).distinct_count, 3.0);
  EXPECT_DOUBLE_EQ(stats.column(1).distinct_count, 1.0);
}

TEST(TableStatisticsTest, SelectivityEquality) {
  // 100 distinct values uniformly: eq should estimate ~1%.
  Xoshiro256 rng(5);
  AlignedVector<int32_t> a = GenerateUniformColumn<int32_t>(10000, 0, 99, rng);
  const TablePtr table = MakeInt32Table(std::move(a),
                                        AlignedVector<int32_t>(10000, 1));
  const TableStatistics stats = TableStatistics::Compute(*table);
  const double sel = stats.EstimateSelectivity(0, CompareOp::kEq, Value(50));
  EXPECT_GT(sel, 0.001);
  EXPECT_LT(sel, 0.05);
}

TEST(TableStatisticsTest, SelectivityRange) {
  AlignedVector<int32_t> a(1000);
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<int32_t>(i);
  const TablePtr table =
      MakeInt32Table(std::move(a), AlignedVector<int32_t>(1000, 1));
  const TableStatistics stats = TableStatistics::Compute(*table);
  EXPECT_NEAR(stats.EstimateSelectivity(0, CompareOp::kLt, Value(500)), 0.5,
              0.05);
  EXPECT_NEAR(stats.EstimateSelectivity(0, CompareOp::kGe, Value(900)), 0.1,
              0.05);
  // Out-of-range probes.
  EXPECT_DOUBLE_EQ(stats.EstimateSelectivity(0, CompareOp::kLt, Value(-5)),
                   0.0);
  EXPECT_DOUBLE_EQ(
      stats.EstimateSelectivity(0, CompareOp::kLt, Value(10000)), 1.0);
  EXPECT_DOUBLE_EQ(stats.EstimateSelectivity(0, CompareOp::kEq, Value(-5)),
                   0.0);
  EXPECT_DOUBLE_EQ(stats.EstimateSelectivity(0, CompareOp::kNe, Value(-5)),
                   1.0);
}

TEST(TableStatisticsTest, EstimatesBounded) {
  Xoshiro256 rng(6);
  AlignedVector<int32_t> a = GenerateUniformColumn<int32_t>(5000, -50, 50, rng);
  const TablePtr table =
      MakeInt32Table(std::move(a), AlignedVector<int32_t>(5000, 1));
  const TableStatistics stats = TableStatistics::Compute(*table);
  for (const CompareOp op : kAllCompareOps) {
    for (const int32_t probe : {-100, -50, 0, 50, 100}) {
      const double sel = stats.EstimateSelectivity(0, op, Value(probe));
      EXPECT_GE(sel, 0.0) << CompareOpToString(op) << " " << probe;
      EXPECT_LE(sel, 1.0) << CompareOpToString(op) << " " << probe;
    }
  }
}

}  // namespace
}  // namespace fts
