#include <gtest/gtest.h>

#include "fts/common/random.h"
#include "fts/scan/table_scan.h"
#include "fts/simd/dispatch.h"
#include "fts/simd/kernels_scalar.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace fts {
namespace {

TEST(BitPackedColumnTest, BitWidthForDictionarySize) {
  using C = BitPackedColumn<int32_t>;
  EXPECT_EQ(C::BitWidthFor(1), 1);
  EXPECT_EQ(C::BitWidthFor(2), 1);
  EXPECT_EQ(C::BitWidthFor(3), 2);
  EXPECT_EQ(C::BitWidthFor(4), 2);
  EXPECT_EQ(C::BitWidthFor(5), 3);
  EXPECT_EQ(C::BitWidthFor(1 << 20), 20);
  EXPECT_EQ(C::BitWidthFor((1 << 20) + 1), 21);
}

TEST(BitPackedColumnTest, PackUnpackRoundTrip) {
  for (const int bits : {1, 2, 3, 5, 7, 8, 11, 13, 16, 17, 23, 26}) {
    const size_t rows = 1000;
    AlignedVector<uint8_t> packed(
        BitPackedColumn<int32_t>::PackedBytes(rows, bits) +
            kBitPackedSlackBytes,
        0);
    Xoshiro256 rng(static_cast<uint64_t>(bits));
    std::vector<uint32_t> expected(rows);
    for (size_t i = 0; i < rows; ++i) {
      expected[i] =
          static_cast<uint32_t>(rng.NextBounded(1ull << bits));
      BitPackedColumn<int32_t>::WriteCode(packed.data(), i, bits,
                                          expected[i]);
    }
    for (size_t i = 0; i < rows; ++i) {
      ASSERT_EQ(
          BitPackedColumn<int32_t>::ExtractCode(packed.data(), i, bits),
          expected[i])
          << "bits=" << bits << " row=" << i;
    }
  }
}

TEST(BitPackedColumnTest, FromValuesDecodes) {
  AlignedVector<int32_t> values = {70, 30, 70, 10, 30, 90, 10, 10};
  const auto column = BitPackedColumn<int32_t>::FromValues(values);
  EXPECT_EQ(column.dictionary(), (std::vector<int32_t>{10, 30, 70, 90}));
  EXPECT_EQ(column.bit_width(), 2);
  EXPECT_EQ(column.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(ValueAs<int32_t>(column.GetValue(i)), values[i]) << i;
  }
  // 8 codes x 2 bits = 2 bytes versus 32 bytes of uint32 codes.
  EXPECT_EQ(column.packed_bytes(), 2u);
  EXPECT_DOUBLE_EQ(column.CompressionVsCodes(), 16.0);
}

TEST(BitPackedColumnTest, ColumnInterface) {
  AlignedVector<int32_t> values = {5, 6, 5};
  const auto column = BitPackedColumn<int32_t>::FromValues(values);
  EXPECT_EQ(column.encoding(), ColumnEncoding::kBitPacked);
  EXPECT_EQ(column.scan_type(), DataType::kUInt32);
  EXPECT_EQ(column.packed_bit_width(), 1);
  EXPECT_EQ(column.data_type(), DataType::kInt32);
}

TEST(BitPackedColumnTest, PredicateTranslationMatchesDictionary) {
  AlignedVector<int32_t> values;
  Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    values.push_back(static_cast<int32_t>(rng.NextBounded(37)) * 3);
  }
  const auto packed = BitPackedColumn<int32_t>::FromValues(values);
  for (const CompareOp op : kAllCompareOps) {
    for (const int32_t probe : {-1, 0, 3, 4, 54, 108, 200}) {
      const auto translated = packed.TranslatePredicate(op, probe);
      // Oracle: per-row evaluation.
      for (size_t row = 0; row < values.size(); ++row) {
        const bool expected = EvaluateCompare(op, values[row], probe);
        bool actual = false;
        switch (translated.kind) {
          case DictionaryPredicate::Kind::kNone:
            actual = false;
            break;
          case DictionaryPredicate::Kind::kAll:
            actual = true;
            break;
          case DictionaryPredicate::Kind::kCompare:
            actual = EvaluateCompare(translated.op, packed.CodeAt(row),
                                     translated.code);
            break;
        }
        ASSERT_EQ(actual, expected)
            << CompareOpToString(op) << " " << probe << " row " << row;
      }
    }
  }
}

// Kernel sweep: packed chains against the scalar reference across bit
// widths, operators, and chain shapes (including mixed packed + plain).
class PackedKernelTest
    : public ::testing::TestWithParam<std::tuple<FusedKernelKind, int>> {
 protected:
  void SetUp() override {
    auto kernel = GetFusedScanKernel(std::get<0>(GetParam()));
    if (!kernel.ok()) GTEST_SKIP() << kernel.status().ToString();
    kernel_ = *kernel;
  }
  FusedScanFn kernel_ = nullptr;
};

TEST_P(PackedKernelTest, PackedChainMatchesReference) {
  const int bits = std::get<1>(GetParam());
  Xoshiro256 rng(static_cast<uint64_t>(bits) * 77);
  for (const size_t rows : {1ul, 15ul, 16ul, 17ul, 255ul, 2049ul}) {
    // Two packed stages with random codes in [0, 2^bits).
    std::vector<AlignedVector<uint8_t>> buffers;
    std::vector<ScanStage> stages;
    for (int s = 0; s < 2; ++s) {
      AlignedVector<uint8_t> packed(
          BitPackedColumn<int32_t>::PackedBytes(rows, bits) +
              kBitPackedSlackBytes,
          0);
      for (size_t i = 0; i < rows; ++i) {
        BitPackedColumn<int32_t>::WriteCode(
            packed.data(), i, bits, rng.NextBounded(1ull << bits));
      }
      buffers.push_back(std::move(packed));
      ScanStage stage;
      stage.data = buffers.back().data();
      stage.type = ScanElementType::kU32;
      stage.op = kAllCompareOps[rng.NextBounded(6)];
      stage.value.u32 = static_cast<uint32_t>(
          rng.NextBounded(1ull << bits));
      stage.packed_bits = static_cast<uint8_t>(bits);
      stages.push_back(stage);
    }
    std::vector<uint32_t> expected(rows + kScanOutputSlack);
    std::vector<uint32_t> actual(rows + kScanOutputSlack);
    const size_t n_expected =
        FusedScanScalar(stages.data(), stages.size(), rows,
                        expected.data());
    const size_t n_actual =
        kernel_(stages.data(), stages.size(), rows, actual.data());
    ASSERT_EQ(n_actual, n_expected) << "bits=" << bits << " rows=" << rows;
    for (size_t i = 0; i < n_expected; ++i) {
      ASSERT_EQ(actual[i], expected[i]) << "position " << i;
    }
  }
}

TEST_P(PackedKernelTest, MixedPackedAndPlainChain) {
  const int bits = std::get<1>(GetParam());
  Xoshiro256 rng(static_cast<uint64_t>(bits) * 131);
  const size_t rows = 3000;

  AlignedVector<uint8_t> packed(
      BitPackedColumn<int32_t>::PackedBytes(rows, bits) +
          kBitPackedSlackBytes,
      0);
  for (size_t i = 0; i < rows; ++i) {
    BitPackedColumn<int32_t>::WriteCode(packed.data(), i, bits,
                                        rng.NextBounded(1ull << bits));
  }
  AlignedVector<int32_t> plain(rows);
  for (auto& v : plain) v = static_cast<int32_t>(rng.NextBounded(4));

  std::vector<ScanStage> stages(2);
  stages[0].data = plain.data();
  stages[0].type = ScanElementType::kI32;
  stages[0].op = CompareOp::kEq;
  stages[0].value.i32 = 1;
  stages[1].data = packed.data();
  stages[1].type = ScanElementType::kU32;
  stages[1].op = CompareOp::kLe;
  stages[1].value.u32 =
      static_cast<uint32_t>((1ull << bits) / 2);
  stages[1].packed_bits = static_cast<uint8_t>(bits);

  for (int order = 0; order < 2; ++order) {
    std::vector<uint32_t> expected(rows + kScanOutputSlack);
    std::vector<uint32_t> actual(rows + kScanOutputSlack);
    const size_t n_expected =
        FusedScanScalar(stages.data(), 2, rows, expected.data());
    const size_t n_actual = kernel_(stages.data(), 2, rows, actual.data());
    ASSERT_EQ(n_actual, n_expected) << "bits=" << bits << " order=" << order;
    for (size_t i = 0; i < n_expected; ++i) {
      ASSERT_EQ(actual[i], expected[i]);
    }
    std::swap(stages[0], stages[1]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackedKernelTest,
    ::testing::Combine(
        ::testing::Values(FusedKernelKind::kScalar, FusedKernelKind::kAvx2_128,
                          FusedKernelKind::kAvx512_128,
                          FusedKernelKind::kAvx512_256,
                          FusedKernelKind::kAvx512_512),
        ::testing::Values(1, 2, 3, 7, 8, 12, 16, 21, 26)));

TEST(BitPackedScanTest, EndToEndThroughTableScanner) {
  // Build a table whose column is bit-packed and scan it with every
  // engine; counts must match a plain-encoded copy of the same data.
  Xoshiro256 rng(99);
  AlignedVector<int32_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(static_cast<int32_t>(rng.NextBounded(100)));
  }
  TableBuilder packed_builder({{"v", DataType::kInt32}});
  AlignedVector<int32_t> copy = values;
  FTS_CHECK(packed_builder
                .AddChunk({std::make_shared<BitPackedColumn<int32_t>>(
                    BitPackedColumn<int32_t>::FromValues(values))})
                .ok());
  const TablePtr packed_table = packed_builder.Build();

  TableBuilder plain_builder({{"v", DataType::kInt32}});
  FTS_CHECK(plain_builder
                .AddChunk({std::make_shared<ValueColumn<int32_t>>(
                    std::move(copy))})
                .ok());
  const TablePtr plain_table = plain_builder.Build();

  for (const CompareOp op : kAllCompareOps) {
    ScanSpec spec;
    spec.predicates = {{"v", op, Value(50)}};
    const auto expected =
        ExecuteScanCount(plain_table, spec, ScanEngine::kScalarFused);
    ASSERT_TRUE(expected.ok());
    for (const ScanEngine engine :
         {ScanEngine::kSisdNoVec, ScanEngine::kScalarFused,
          ScanEngine::kAvx2Fused128, ScanEngine::kAvx512Fused512,
          ScanEngine::kBlockwise}) {
      if (!ScanEngineAvailable(engine)) continue;
      const auto count = ExecuteScanCount(packed_table, spec, engine);
      ASSERT_TRUE(count.ok()) << ScanEngineToString(engine);
      EXPECT_EQ(*count, *expected)
          << ScanEngineToString(engine) << " op " << CompareOpToString(op);
    }
  }
}

}  // namespace
}  // namespace fts
