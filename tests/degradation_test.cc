#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "fts/common/cpu_info.h"
#include "fts/common/fault_injection.h"
#include "fts/db/database.h"
#include "fts/jit/compiler_driver.h"
#include "fts/jit/jit_cache.h"
#include "fts/storage/data_generator.h"

namespace fts {
namespace {

constexpr char kCountSql[] =
    "SELECT COUNT(*) FROM tbl WHERE c0 = 5 AND c1 = 2";
constexpr char kProjectSql[] =
    "SELECT c0, c1 FROM tbl WHERE c0 = 5 AND c1 = 2";

// End-to-end resilience: with any single JIT fault injected, a kJit query
// under the default ladder policy must still succeed with results
// bit-identical to the SISD reference, and the demotion must be visible in
// QueryResult::execution_report.
class DegradationTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (FaultInjection::Instance().AnyArmed()) {
      GTEST_SKIP() << "fault injection armed via FTS_FAULT; this suite "
                      "manages its own faults";
    }
    // The global cache may hold modules, poisoned signatures, or a sticky
    // compiler-unavailable latch from other suites (or leave them for
    // them) — isolate both directions.
    GlobalJitCache().Clear();
    ScanTableOptions options;
    options.rows = 20000;
    options.selectivities = {0.2, 0.3};
    options.seed = 1234;
    generated_ = MakeScanTable(options);
    ASSERT_TRUE(db_.RegisterTable("tbl", generated_.table).ok());
  }

  void TearDown() override { GlobalJitCache().Clear(); }

  StatusOr<QueryResult> SisdReference(const std::string& sql) const {
    Database::QueryOptions options;
    options.engine = ScanEngine::kSisdNoVec;
    return db_.Query(sql, options);
  }

  Database db_;
  GeneratedScanTable generated_;
};

TEST_P(DegradationTest, QuerySurvivesFaultWithIdenticalResults) {
  const auto reference_count = SisdReference(kCountSql);
  const auto reference_rows = SisdReference(kProjectSql);
  ASSERT_TRUE(reference_count.ok());
  ASSERT_TRUE(reference_rows.ok());

  ScopedFault fault(GetParam());

  Database::QueryOptions options;
  options.engine = ScanEngine::kJit;
  options.fallback = FallbackPolicy::kLadder;

  const auto count_result = db_.Query(kCountSql, options);
  ASSERT_TRUE(count_result.ok())
      << GetParam() << ": " << count_result.status().ToString();
  EXPECT_EQ(*count_result->count, *reference_count->count);

  const ExecutionReport& report = count_result->execution_report;
  EXPECT_EQ(report.requested.engine, ScanEngine::kJit);
  EXPECT_TRUE(report.degraded) << report.ToString();
  EXPECT_NE(report.executed.engine, ScanEngine::kJit) << report.ToString();
  // At least one attempt failed before the rung that succeeded, and the
  // failure reason was recorded.
  const bool has_failed_attempt = std::any_of(
      report.attempts.begin(), report.attempts.end(),
      [](const EngineAttempt& attempt) { return !attempt.status.ok(); });
  EXPECT_TRUE(has_failed_attempt) << report.ToString();

  const auto rows_result = db_.Query(kProjectSql, options);
  ASSERT_TRUE(rows_result.ok())
      << GetParam() << ": " << rows_result.status().ToString();
  EXPECT_EQ(rows_result->RowCountOut(), reference_rows->RowCountOut());
  EXPECT_EQ(rows_result->ToString(rows_result->RowCountOut()),
            reference_rows->ToString(reference_rows->RowCountOut()));
  EXPECT_TRUE(rows_result->execution_report.degraded);
}

INSTANTIATE_TEST_SUITE_P(
    AllJitFaults, DegradationTest,
    ::testing::Values(kFaultJitCompilerMissing, kFaultJitCompileError,
                      kFaultJitCompileTimeout, kFaultJitDlopenFail,
                      kFaultJitSymbolMissing),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '.', '_');
      return name;
    });

using DegradationFixture = DegradationTest;

TEST_P(DegradationFixture, StrictPolicyFailsFast) {
  ScopedFault fault(GetParam());
  Database::QueryOptions options;
  options.engine = ScanEngine::kJit;
  options.fallback = FallbackPolicy::kStrict;
  const auto result = db_.Query(kCountSql, options);
  EXPECT_FALSE(result.ok())
      << GetParam() << ": strict policy must surface the engine failure";
}

INSTANTIATE_TEST_SUITE_P(
    AllJitFaultsStrict, DegradationFixture,
    ::testing::Values(kFaultJitCompilerMissing, kFaultJitCompileError,
                      kFaultJitCompileTimeout, kFaultJitDlopenFail,
                      kFaultJitSymbolMissing),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '.', '_');
      return name;
    });

// Control: with no fault armed and AVX-512 present, the ladder must not
// demote anything — the JIT path stays the JIT path.
class NoFaultTest : public DegradationTest {};

TEST_P(NoFaultTest, JitRunsUndegradedWithoutFaults) {
  if (!GetCpuFeatures().HasFusedScanAvx512()) {
    GTEST_SKIP() << "AVX-512 not available";
  }
  Database::QueryOptions options;
  options.engine = ScanEngine::kJit;
  options.fallback = FallbackPolicy::kLadder;
  const auto result = db_.Query(kCountSql, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto reference = SisdReference(kCountSql);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(*result->count, *reference->count);

  const ExecutionReport& report = result->execution_report;
  EXPECT_FALSE(report.degraded) << report.ToString();
  EXPECT_EQ(report.executed.engine, ScanEngine::kJit) << report.ToString();
  EXPECT_EQ(report.executed.jit_register_bits, 512);
}

INSTANTIATE_TEST_SUITE_P(Control, NoFaultTest, ::testing::Values("none"),
                         [](const ::testing::TestParamInfo<const char*>&) {
                           return std::string("NoFault");
                         });

}  // namespace
}  // namespace fts
