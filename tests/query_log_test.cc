// Tests for the always-on query statistics layer (DESIGN.md §15): SQL
// digesting, the fixed-capacity query ring (wraparound, snapshot ordering,
// concurrent writers), JSON rendering, and the slow-query JSONL log.

#include "fts/obs/query_log.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mini_json.h"

namespace fts::obs {
namespace {

using fts::testing::JsonValue;
using fts::testing::ParseJson;

TEST(SqlDigestTest, ReplacesLiteralsAndCollapsesWhitespace) {
  EXPECT_EQ(SqlDigest("SELECT COUNT(*) FROM t WHERE c0 = 5 AND c1 = 123"),
            "SELECT COUNT(*) FROM t WHERE c0 = ? AND c1 = ?");
  EXPECT_EQ(SqlDigest("SELECT  *   FROM\tt\nWHERE x < 10"),
            "SELECT * FROM t WHERE x < ?");
  EXPECT_EQ(SqlDigest("SELECT * FROM t WHERE name = 'alice'"),
            "SELECT * FROM t WHERE name = ?");
}

TEST(SqlDigestTest, KeepsIdentifierTailDigits) {
  // Digits that are part of an identifier (c0, t2) are structure, not
  // literals; only standalone numbers become '?'.
  EXPECT_EQ(SqlDigest("SELECT c0 FROM t2 WHERE c0 = 7"),
            "SELECT c0 FROM t2 WHERE c0 = ?");
}

TEST(SqlDigestTest, CapsLength) {
  const std::string digest = SqlDigest(std::string(4000, 'x'));
  EXPECT_EQ(digest.size(), 160u);  // hard cap, truncated
}

TEST(QueryLogTest, RecordsAndSnapshotsNewestFirst) {
  QueryLog log(8);
  for (int i = 0; i < 3; ++i) {
    QueryLogEntry entry;
    entry.digest = "q" + std::to_string(i);
    entry.status = "ok";
    log.Record(std::move(entry));
  }
  EXPECT_EQ(log.total_recorded(), 3u);
  EXPECT_EQ(log.capacity(), 8u);

  const std::vector<QueryLogEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].digest, "q2");  // newest first
  EXPECT_EQ(entries[2].digest, "q0");
  // Ids are monotone and wall time was stamped.
  EXPECT_GT(entries[0].id, entries[2].id);
  EXPECT_GT(entries[0].wall_unix_micros, 0);
}

TEST(QueryLogTest, RingWrapsToCapacityKeepingNewest) {
  QueryLog log(4);
  for (int i = 0; i < 11; ++i) {
    QueryLogEntry entry;
    entry.digest = "q" + std::to_string(i);
    log.Record(std::move(entry));
  }
  EXPECT_EQ(log.total_recorded(), 11u);
  const std::vector<QueryLogEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 4u);  // capacity, not total
  EXPECT_EQ(entries[0].digest, "q10");
  EXPECT_EQ(entries[3].digest, "q7");  // oldest retained = total - capacity
}

TEST(QueryLogTest, SnapshotHonorsMaxEntries) {
  QueryLog log(8);
  for (int i = 0; i < 6; ++i) log.Record(QueryLogEntry{});
  EXPECT_EQ(log.Snapshot(2).size(), 2u);
  EXPECT_EQ(log.Snapshot(0).size(), 6u);
  EXPECT_EQ(log.Snapshot(100).size(), 6u);
}

TEST(QueryLogTest, ConcurrentWritersNeverTearAndCountExactly) {
  // A small ring under many writers: slots are claimed by atomic id and
  // written under per-slot locks, so every retained entry must be
  // internally consistent (digest matches the writer-thread tag) and the
  // lifetime count must be exact. Run under TSan via the concurrency
  // label.
  QueryLog log(16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryLogEntry entry;
        entry.digest = "writer" + std::to_string(t);
        entry.rows_scanned = static_cast<uint64_t>(t);
        entry.status = "ok";
        log.Record(std::move(entry));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(log.total_recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const std::vector<QueryLogEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 16u);
  for (size_t i = 0; i + 1 < entries.size(); ++i) {
    EXPECT_GT(entries[i].id, entries[i + 1].id);  // strictly newest-first
  }
  for (const QueryLogEntry& entry : entries) {
    // Untorn: the digest's writer tag agrees with rows_scanned.
    EXPECT_EQ(entry.digest,
              "writer" + std::to_string(entry.rows_scanned));
  }
}

TEST(QueryLogTest, RenderJsonParsesWithSchema) {
  QueryLog log(4);
  QueryLogEntry entry;
  entry.digest = "SELECT COUNT(*) FROM t WHERE c0 = ?";
  entry.status = "ok";
  entry.engine = "jit";
  entry.counter_source = "simulated";
  entry.total_millis = 1.5;
  entry.rows_scanned = 1000;
  entry.rows_matched = 10;
  entry.model_active = true;
  entry.est_error_permille = 42;
  log.Record(std::move(entry));

  const auto parsed = ParseJson(log.RenderJson());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->array.size(), 1u);
  const JsonValue& q = parsed->array[0];
  ASSERT_NE(q.Find("digest"), nullptr);
  EXPECT_EQ(q.Find("digest")->string, "SELECT COUNT(*) FROM t WHERE c0 = ?");
  EXPECT_EQ(q.Find("status")->string, "ok");
  EXPECT_EQ(q.Find("engine")->string, "jit");
  EXPECT_EQ(q.Find("counter_source")->string, "simulated");
  EXPECT_EQ(q.Find("rows_scanned")->number, 1000.0);
  EXPECT_EQ(q.Find("est_error_permille")->number, 42.0);
  EXPECT_TRUE(q.Find("model_active")->boolean);
}

TEST(QueryLogTest, SlowQueryLogWritesJsonLinesAboveThreshold) {
  const std::string path =
      ::testing::TempDir() + "/fts_slow_query_test.jsonl";
  std::remove(path.c_str());
  {
    QueryLog log(8, /*slow_threshold_ms=*/2.0, path);
    QueryLogEntry fast;
    fast.digest = "fast";
    fast.total_millis = 0.5;
    log.Record(std::move(fast));
    QueryLogEntry slow;
    slow.digest = "slow";
    slow.total_millis = 7.25;
    slow.status = "ok";
    log.Record(std::move(slow));
  }
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << "slow-query log was not created at " << path;
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  // Exactly one line (the fast query stayed out), valid JSON, with the
  // slow query's fields.
  ASSERT_FALSE(contents.empty());
  EXPECT_EQ(contents.back(), '\n');
  contents.pop_back();
  EXPECT_EQ(contents.find('\n'), std::string::npos);
  const auto parsed = ParseJson(contents);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("digest")->string, "slow");
  EXPECT_EQ(parsed->Find("total_millis")->number, 7.25);
}

TEST(QueryLogTest, GlobalInstanceIsUsableAndStable) {
  QueryLog& global = QueryLog::Global();
  EXPECT_EQ(&QueryLog::Global(), &global);
  EXPECT_GE(global.capacity(), 1u);
}

}  // namespace
}  // namespace fts::obs
