#include <gtest/gtest.h>

#include <set>

#include "fts/common/aligned_buffer.h"
#include "fts/common/cpu_info.h"
#include "fts/common/env.h"
#include "fts/common/random.h"
#include "fts/common/stats.h"
#include "fts/common/status.h"
#include "fts/common/string_util.h"

namespace fts {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Doubled(StatusOr<int> input) {
  FTS_ASSIGN_OR_RETURN(const int value, input);
  return value * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::Internal("boom")).status().code(),
            StatusCode::kInternal);
}

TEST(RandomTest, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RandomTest, BoundedStaysInBound) {
  Xoshiro256 rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RandomTest, BoundedCoversRange) {
  Xoshiro256 rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, NextInRangeInclusive) {
  Xoshiro256 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ShufflePermutes) {
  Xoshiro256 rng(13);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // Overwhelmingly likely with this seed.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(StatsTest, Percentile) {
  const std::vector<double> samples = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(samples, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 50), 5.5);
}

TEST(StatsTest, MeanAndStdDev) {
  const std::vector<double> samples = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(samples), 5.0);
  EXPECT_NEAR(StdDev(samples), 2.138, 0.001);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  RunningStats running;
  const std::vector<double> samples = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double s : samples) running.Add(s);
  EXPECT_EQ(running.count(), samples.size());
  EXPECT_DOUBLE_EQ(running.mean(), Mean(samples));
  EXPECT_NEAR(running.StdDev(), StdDev(samples), 1e-12);
  EXPECT_DOUBLE_EQ(running.min(), 2.0);
  EXPECT_DOUBLE_EQ(running.max(), 9.0);
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, TrimAndCase) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("from"), "FROM");
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("WHERE", "were"));
}

TEST(StringUtilTest, StrFormatAndReplace) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(ReplaceAll("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(ReplaceAll("abc", "z", "y"), "abc");
}

TEST(StringUtilTest, HumanUnits) {
  EXPECT_EQ(HumanRows(1000), "1K");
  EXPECT_EQ(HumanRows(132000000), "132M");
  EXPECT_EQ(HumanRows(42), "42");
  EXPECT_EQ(HumanBytes(1536.0), "1.5 KiB");
}

TEST(EnvTest, Int64Suffixes) {
  setenv("FTS_TEST_ENV_INT", "32M", 1);
  EXPECT_EQ(GetEnvInt64("FTS_TEST_ENV_INT", 0), 32000000);
  setenv("FTS_TEST_ENV_INT", "5", 1);
  EXPECT_EQ(GetEnvInt64("FTS_TEST_ENV_INT", 0), 5);
  unsetenv("FTS_TEST_ENV_INT");
  EXPECT_EQ(GetEnvInt64("FTS_TEST_ENV_INT", 17), 17);
}

TEST(EnvTest, Bool) {
  setenv("FTS_TEST_ENV_BOOL", "yes", 1);
  EXPECT_TRUE(GetEnvBool("FTS_TEST_ENV_BOOL", false));
  setenv("FTS_TEST_ENV_BOOL", "0", 1);
  EXPECT_FALSE(GetEnvBool("FTS_TEST_ENV_BOOL", true));
  unsetenv("FTS_TEST_ENV_BOOL");
  EXPECT_TRUE(GetEnvBool("FTS_TEST_ENV_BOOL", true));
}

TEST(CpuInfoTest, FeatureStringNonEmpty) {
  // Whatever the host, ToString must render something stable.
  EXPECT_FALSE(GetCpuFeatures().ToString().empty());
}

TEST(CpuInfoTest, CacheGeometrySane) {
  const CacheInfo& info = GetCacheInfo();
  EXPECT_GT(info.l1d_bytes, 0);
  EXPECT_GE(info.l2_bytes, info.l1d_bytes);
  EXPECT_EQ(info.line_bytes, 64);
}

TEST(AlignedBufferTest, AlignmentHolds) {
  for (size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedVector<int32_t> v(n, 1);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kColumnAlignment, 0u);
  }
}

}  // namespace
}  // namespace fts
