#include <gtest/gtest.h>

#include "fts/storage/data_generator.h"
#include "fts/storage/value_column.h"

namespace fts {
namespace {

TEST(ExactSelectivityMaskTest, ExactCount) {
  Xoshiro256 rng(1);
  for (const auto& [rows, matches] :
       std::vector<std::pair<size_t, size_t>>{
           {100, 0}, {100, 1}, {100, 50}, {100, 100}, {997, 13}}) {
    const auto mask = ExactSelectivityMask(rows, matches, rng);
    size_t actual = 0;
    for (const uint8_t m : mask) actual += m;
    EXPECT_EQ(actual, matches) << rows << "/" << matches;
  }
}

TEST(ExactSelectivityMaskTest, UniformSpread) {
  // With 10% selectivity over 100k rows, each quarter of the table should
  // hold roughly a quarter of the matches.
  Xoshiro256 rng(2);
  const size_t rows = 100000;
  const auto mask = ExactSelectivityMask(rows, rows / 10, rng);
  size_t quarters[4] = {};
  for (size_t i = 0; i < rows; ++i) quarters[i / (rows / 4)] += mask[i];
  for (const size_t q : quarters) {
    EXPECT_NEAR(static_cast<double>(q), 2500.0, 300.0);
  }
}

TEST(MatchCountTest, RoundingAndClamping) {
  EXPECT_EQ(MatchCountForSelectivity(100, 0.0), 0u);
  EXPECT_EQ(MatchCountForSelectivity(100, 1.0), 100u);
  EXPECT_EQ(MatchCountForSelectivity(100, 0.5), 50u);
  // Tiny but non-zero selectivity keeps at least one row.
  EXPECT_EQ(MatchCountForSelectivity(100, 1e-9), 1u);
  EXPECT_EQ(MatchCountForSelectivity(0, 0.5), 0u);
}

TEST(FillFromMaskTest, MatchesAndNonMatches) {
  Xoshiro256 rng(3);
  const std::vector<uint8_t> mask = {1, 0, 0, 1, 0};
  const auto values = FillFromMask<int32_t>(mask, 5, 100, 200, rng);
  ASSERT_EQ(values.size(), mask.size());
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) {
      EXPECT_EQ(values[i], 5);
    } else {
      EXPECT_GE(values[i], 100);
      EXPECT_LE(values[i], 200);
    }
  }
}

TEST(FillFromMaskTest, ExcludesMatchValueFromNonMatches) {
  Xoshiro256 rng(4);
  // Non-match range contains the match value; it must be re-drawn away.
  const std::vector<uint8_t> mask(1000, 0);
  const auto values = FillFromMask<int32_t>(mask, 5, 4, 6, rng);
  for (const int32_t v : values) EXPECT_NE(v, 5);
}

TEST(MakeScanTableTest, StageMatchesAreExact) {
  ScanTableOptions options;
  options.rows = 10000;
  options.selectivities = {0.1, 0.5, 0.5};
  options.seed = 5;
  const GeneratedScanTable generated = MakeScanTable(options);

  EXPECT_EQ(generated.table->row_count(), options.rows);
  EXPECT_EQ(generated.table->column_count(), 3u);
  EXPECT_EQ(generated.stage_matches[0], 1000u);
  EXPECT_EQ(generated.stage_matches[1], 500u);
  EXPECT_EQ(generated.stage_matches[2], 250u);

  // Cross-check the final mask against cell values.
  uint64_t final_count = 0;
  for (size_t i = 0; i < options.rows; ++i) {
    bool all = true;
    for (size_t p = 0; p < 3; ++p) {
      const auto value = generated.table->GetValue(
          p, {0, static_cast<ChunkOffset>(i)});
      all = all &&
            (ValueAs<int32_t>(value) == generated.search_values[p]);
    }
    EXPECT_EQ(all, generated.final_mask[i] != 0) << "row " << i;
    final_count += all;
  }
  EXPECT_EQ(final_count, generated.stage_matches.back());
}

TEST(MakeScanTableTest, DeterministicForSeed) {
  ScanTableOptions options;
  options.rows = 1000;
  options.selectivities = {0.2, 0.5};
  options.seed = 99;
  const auto a = MakeScanTable(options);
  const auto b = MakeScanTable(options);
  for (size_t i = 0; i < options.rows; ++i) {
    EXPECT_EQ(ValueAs<int32_t>(a.table->GetValue(0, {0, (ChunkOffset)i})),
              ValueAs<int32_t>(b.table->GetValue(0, {0, (ChunkOffset)i})));
  }
}

TEST(MakeScanTableTest, ChunkedTablePreservesData) {
  ScanTableOptions whole;
  whole.rows = 1000;
  whole.selectivities = {0.1, 0.5};
  whole.seed = 17;
  ScanTableOptions chunked = whole;
  chunked.chunk_size = 333;

  const auto a = MakeScanTable(whole);
  const auto b = MakeScanTable(chunked);
  EXPECT_EQ(b.table->chunk_count(), 4u);
  EXPECT_EQ(b.table->row_count(), 1000u);
  // Same seed => same values, only chunked differently.
  for (size_t i = 0; i < whole.rows; ++i) {
    const RowId flat{0, static_cast<ChunkOffset>(i)};
    const RowId split{static_cast<ChunkId>(i / 333),
                      static_cast<ChunkOffset>(i % 333)};
    EXPECT_EQ(ValueAs<int32_t>(a.table->GetValue(0, flat)),
              ValueAs<int32_t>(b.table->GetValue(0, split)));
  }
}

TEST(MakeScanTableTest, DictionaryEncodedVariant) {
  ScanTableOptions options;
  options.rows = 2000;
  options.selectivities = {0.25};
  options.dictionary_encode = true;
  const auto generated = MakeScanTable(options);
  const BaseColumn& column = generated.table->chunk(0).column(0);
  EXPECT_EQ(column.encoding(), ColumnEncoding::kDictionary);
  EXPECT_EQ(generated.stage_matches[0], 500u);
}

}  // namespace
}  // namespace fts
