// Cancellation fuzzer: injects a cancel at a random morsel/chunk boundary
// (QueryContext::CancelAtCheck — deterministic per seed, no timer races)
// into the morsel-driven parallel scan across the static engine rungs and
// the JIT path at 1/2/4 threads, then asserts the lifecycle contract:
//
//   - a run that fails does so with exactly kQueryCanceled;
//   - a run that completes (the cancel landed after the last boundary) is
//     byte-identical to the SISD reference;
//   - the engine stays fully usable afterwards: an un-canceled rerun over
//     the same scanner returns the reference result.
//
// Runs under TSan via the `concurrency` label; JIT cases self-skip there
// (dlopen'd operators are uninstrumented code TSan cannot follow).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fts/common/cpu_info.h"
#include "fts/common/query_context.h"
#include "fts/exec/parallel_scan.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"
#include "test_util.h"

namespace fts {
namespace {

constexpr char kBinary[] = "cancellation_fuzz_test";

// Small deterministic PRNG (splitmix64) so the cancel point depends only
// on the seed.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct FuzzTable {
  GeneratedScanTable generated;
  ScanSpec spec;
};

FuzzTable MakeFuzzTable(uint64_t seed) {
  FuzzTable fuzz;
  ScanTableOptions options;
  // Multi-chunk: enough morsels that 1/2/4 threads genuinely interleave,
  // small enough to fuzz many seeds.
  options.rows = 200000;
  options.chunk_size = 16384;  // 13 chunks.
  options.selectivities = {0.3, 0.6};
  options.seed = seed;
  fuzz.generated = MakeScanTable(options);
  fuzz.spec.predicates = {
      {"c0", CompareOp::kEq, Value(fuzz.generated.search_values[0])},
      {"c1", CompareOp::kEq, Value(fuzz.generated.search_values[1])}};
  return fuzz;
}

void ExpectSameMatches(const TableMatches& reference,
                       const TableMatches& got, const std::string& what,
                       uint64_t seed) {
  ASSERT_EQ(reference.chunks.size(), got.chunks.size())
      << what << "\n" << testing::ReplayCommand(kBinary, seed);
  for (size_t i = 0; i < reference.chunks.size(); ++i) {
    ASSERT_EQ(reference.chunks[i].positions, got.chunks[i].positions)
        << what << " chunk " << i << "\n"
        << testing::ReplayCommand(kBinary, seed);
  }
}

std::vector<EngineChoice> FuzzEngines() {
  std::vector<EngineChoice> engines;
  engines.push_back({ScanEngine::kSisdAutoVec, 0});
  engines.push_back({ScanEngine::kScalarFused, 0});
  if (ScanEngineAvailable(ScanEngine::kAvx2Fused128)) {
    engines.push_back({ScanEngine::kAvx2Fused128, 0});
  }
  if (GetCpuFeatures().HasFusedScanAvx512()) {
    engines.push_back({ScanEngine::kAvx512Fused512, 0});
#if !defined(__SANITIZE_THREAD__)
    // JIT-compiled operators are dlopen'd uninstrumented code; TSan
    // cannot follow them, so the JIT rung only runs in the plain config.
    engines.push_back({ScanEngine::kJit, 512});
#endif
  }
  return engines;
}

class CancellationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CancellationFuzzTest, CancelAtRandomMorselBoundary) {
  const uint64_t seed = GetParam();
  const FuzzTable fuzz = MakeFuzzTable(seed);

  const auto prepared = TableScanner::Prepare(fuzz.generated.table, fuzz.spec);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  const auto reference = prepared->Execute(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(reference.ok());

  uint64_t rng = seed;
  for (const EngineChoice& engine : FuzzEngines()) {
    for (const int threads : {1, 2, 4}) {
      // Cancel somewhere in the first ~2x the boundary-check count a
      // clean run needs, so roughly half the runs abort mid-scan and the
      // other half complete (both sides of the contract get exercised).
      rng = Mix(rng);
      const uint64_t cancel_at = rng % 24 + 1;

      QueryContext ctx;
      ctx.CancelAtCheck(cancel_at);
      ParallelScanOptions options;
      options.requested = engine;
      options.fallback = FallbackPolicy::kLadder;
      options.threads = threads;
      options.context = &ctx;
      ExecutionReport report;
      const auto result = ExecuteParallelScan(*prepared, options, &report);

      const std::string what = StrFormat(
          "engine=%s threads=%d cancel_at=%llu",
          engine.ToString().c_str(), threads,
          static_cast<unsigned long long>(cancel_at));
      if (result.ok()) {
        // Completed before the Nth boundary: output must be untouched by
        // the lifecycle plumbing.
        ExpectSameMatches(*reference, *result, what + " (completed)", seed);
      } else {
        EXPECT_EQ(result.status().code(), StatusCode::kQueryCanceled)
            << what << ": " << result.status().ToString() << "\n"
            << testing::ReplayCommand(kBinary, seed);
        EXPECT_TRUE(ctx.cancelled());
        // Deterministic partial-abort accounting: nothing double-counted.
        EXPECT_LE(report.morsels_completed + report.morsels_aborted,
                  report.morsel_count)
            << what;
      }

      // The engine must stay usable: a fresh un-canceled run over the
      // same scanner and pool returns the reference, byte for byte.
      ParallelScanOptions clean = options;
      clean.context = nullptr;
      const auto rerun = ExecuteParallelScan(*prepared, clean);
      ASSERT_TRUE(rerun.ok())
          << what << " rerun: " << rerun.status().ToString() << "\n"
          << testing::ReplayCommand(kBinary, seed);
      ExpectSameMatches(*reference, *rerun, what + " (rerun)", seed);
    }
  }
}

// Count path twin: a canceled count aborts typed; a clean rerun matches.
TEST_P(CancellationFuzzTest, CancelCountPath) {
  const uint64_t seed = GetParam();
  const FuzzTable fuzz = MakeFuzzTable(seed);
  const auto prepared = TableScanner::Prepare(fuzz.generated.table, fuzz.spec);
  ASSERT_TRUE(prepared.ok());
  const auto reference = prepared->ExecuteCount(ScanEngine::kSisdNoVec);
  ASSERT_TRUE(reference.ok());

  uint64_t rng = Mix(seed ^ 0xc0ffee);
  for (const int threads : {1, 2, 4}) {
    rng = Mix(rng);
    QueryContext ctx;
    ctx.CancelAtCheck(rng % 16 + 1);
    ParallelScanOptions options;
    options.requested = {ScanEngine::kScalarFused, 0};
    options.threads = threads;
    options.context = &ctx;
    const auto count = ExecuteParallelScanCount(*prepared, options);
    if (count.ok()) {
      EXPECT_EQ(*count, *reference)
          << testing::ReplayCommand(kBinary, seed);
    } else {
      EXPECT_EQ(count.status().code(), StatusCode::kQueryCanceled)
          << testing::ReplayCommand(kBinary, seed);
    }
    ParallelScanOptions clean = options;
    clean.context = nullptr;
    const auto rerun = ExecuteParallelScanCount(*prepared, clean);
    ASSERT_TRUE(rerun.ok());
    EXPECT_EQ(*rerun, *reference) << testing::ReplayCommand(kBinary, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CancellationFuzzTest,
                         ::testing::ValuesIn(testing::SeedRange(1, 17)));

}  // namespace
}  // namespace fts
