// Instrumentation-overhead guard: the observability layer must be
// near-free when no trace sink is attached. Compares the same scan with
// tracing globally disabled against tracing enabled but unattached (the
// steady state every query runs in) and fails if the unattached fast path
// costs measurably more than the disabled baseline.

#include <algorithm>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "fts/common/stats.h"
#include "fts/common/timer.h"
#include "fts/obs/query_log.h"
#include "fts/obs/trace.h"
#include "fts/perf/counter_attribution.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"

namespace fts {
namespace {

TEST(ObsOverheadTest, UnattachedTracingCostsNoMoreThanDisabled) {
  ScanTableOptions options;
  options.rows = 400000;
  options.selectivities = {0.1, 0.5};
  options.seed = 99;
  options.chunk_size = 10000;  // Many chunks: many span construction sites.
  const GeneratedScanTable generated = MakeScanTable(options);

  ScanSpec spec;
  spec.predicates = {
      {"c0", CompareOp::kEq, Value(generated.search_values[0])},
      {"c1", CompareOp::kEq, Value(generated.search_values[1])}};
  const auto scanner = TableScanner::Prepare(generated.table, spec);
  ASSERT_TRUE(scanner.ok());
  const ScanEngine engine = ScanEngineAvailable(ScanEngine::kAvx512Fused512)
                                ? ScanEngine::kAvx512Fused512
                                : ScanEngine::kScalarFused;
  const uint64_t expected = generated.stage_matches.back();

  auto run_once = [&] {
    const auto count = scanner->ExecuteCount(engine);
    ASSERT_TRUE(count.ok());
    ASSERT_EQ(*count, expected);
  };

  // Interleave the two configurations so clock drift / frequency scaling
  // on a shared host hits both equally.
  constexpr int kReps = 21;
  std::vector<double> disabled_ms, unattached_ms;
  run_once();  // Warm-up outside the timed region.
  for (int rep = 0; rep < kReps; ++rep) {
    obs::SetTracingEnabled(false);
    {
      Stopwatch stopwatch;
      run_once();
      disabled_ms.push_back(stopwatch.ElapsedMillis());
    }
    obs::SetTracingEnabled(true);  // Default state: enabled, no sink.
    {
      Stopwatch stopwatch;
      run_once();
      unattached_ms.push_back(stopwatch.ElapsedMillis());
    }
  }
  obs::SetTracingEnabled(true);

  const double disabled = Median(disabled_ms);
  const double unattached = Median(unattached_ms);
  // The unattached fast path is one relaxed load and a branch per span; a
  // generous 1.5x + 0.5ms envelope keeps this immune to shared-vCPU noise
  // while still catching an accidental clock read or allocation on the
  // no-sink path.
  EXPECT_LT(unattached, disabled * 1.5 + 0.5)
      << "disabled=" << disabled << "ms unattached=" << unattached << "ms";
}

TEST(ObsOverheadTest, AlwaysOnQueryStatsStayUnderOnePercentOfScan) {
  // The query-statistics path runs on EVERY query (FTS_OBS defaults on):
  // one SqlDigest over the statement plus one ring Record. Its per-query
  // cost must stay within 1% of a fig5-style scan, or "always-on" becomes
  // a lie. Interleaves {FTS_OBS=0, scan only} with {FTS_OBS=1, scan +
  // digest + record} so host noise hits both configurations equally.
  ScanTableOptions options;
  options.rows = 400000;
  options.selectivities = {0.1, 0.5};
  options.seed = 77;
  const GeneratedScanTable generated = MakeScanTable(options);

  ScanSpec spec;
  spec.predicates = {
      {"c0", CompareOp::kEq, Value(generated.search_values[0])},
      {"c1", CompareOp::kEq, Value(generated.search_values[1])}};
  const auto scanner = TableScanner::Prepare(generated.table, spec);
  ASSERT_TRUE(scanner.ok());
  const ScanEngine engine = ScanEngineAvailable(ScanEngine::kAvx512Fused512)
                                ? ScanEngine::kAvx512Fused512
                                : ScanEngine::kScalarFused;
  const uint64_t expected = generated.stage_matches.back();
  const std::string sql =
      "SELECT COUNT(*) FROM lineitem_like WHERE c0 = 12345 AND c1 = 678";
  obs::QueryLog log(256);

  auto scan_once = [&] {
    const auto count = scanner->ExecuteCount(engine);
    ASSERT_TRUE(count.ok());
    ASSERT_EQ(*count, expected);
  };
  auto record_once = [&] {
    if (!obs::ObsEnabled()) return;  // The exact guard Database uses.
    obs::QueryLogEntry entry;
    entry.digest = obs::SqlDigest(sql);
    entry.status = "ok";
    entry.engine = "avx512-fused-512";
    entry.counter_source = "unavailable";
    entry.rows_scanned = options.rows;
    log.Record(std::move(entry));
  };

  constexpr int kReps = 21;
  std::vector<double> off_ms, on_ms;
  scan_once();  // Warm-up outside the timed region.
  for (int rep = 0; rep < kReps; ++rep) {
    ::setenv("FTS_OBS", "0", 1);
    {
      Stopwatch stopwatch;
      scan_once();
      record_once();
      off_ms.push_back(stopwatch.ElapsedMillis());
    }
    ::setenv("FTS_OBS", "1", 1);
    {
      Stopwatch stopwatch;
      scan_once();
      record_once();
      on_ms.push_back(stopwatch.ElapsedMillis());
    }
  }
  ::unsetenv("FTS_OBS");

  EXPECT_EQ(log.total_recorded(), static_cast<uint64_t>(kReps));
  const double off = Median(off_ms);
  const double on = Median(on_ms);
  // 1% relative envelope plus a small absolute floor so a sub-millisecond
  // scan median on a fast host doesn't turn scheduler jitter into a
  // failure; the floor is still far below any real per-query regression
  // (a stray allocation or lock convoy costs multiples of it).
  EXPECT_LT(on, off * 1.01 + 0.05)
      << "FTS_OBS=0 " << off << "ms vs always-on " << on << "ms";
}

TEST(ObsOverheadTest, DisabledCounterRegionsAreOneBranch) {
  // Steady state: counters are only collected under EXPLAIN ANALYZE, so
  // every per-morsel / per-rung CounterRegion on a plain query must be a
  // single branch. 1M disabled regions in well under a second.
  constexpr int kRegions = 1'000'000;
  Stopwatch stopwatch;
  for (int i = 0; i < kRegions; ++i) {
    CounterRegion region(/*enabled=*/false);
  }
  EXPECT_LT(stopwatch.ElapsedMillis(), 500.0);
}

TEST(ObsOverheadTest, SpanConstructionIsCheapWhenUnattached) {
  ASSERT_EQ(obs::ActiveTraceSink(), nullptr);
  obs::SetTracingEnabled(true);
  // 1M unattached spans must complete in well under a second; a clock
  // read or allocation sneaking into the no-sink constructor blows this
  // budget immediately.
  constexpr int kSpans = 1'000'000;
  Stopwatch stopwatch;
  for (int i = 0; i < kSpans; ++i) {
    obs::TraceSpan span("noop", "test");
  }
  EXPECT_LT(stopwatch.ElapsedMillis(), 500.0);
}

}  // namespace
}  // namespace fts
