// Tests for the obs metrics layer: striped counters under concurrency,
// base-2 exponential histograms, and the registry's Prometheus/JSON
// exposition.

#include "fts/obs/metrics.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fts/obs/json_writer.h"
#include "mini_json.h"

namespace fts::obs {
namespace {

using fts::testing::JsonValue;
using fts::testing::ParseJson;

TEST(CounterTest, StartsAtZeroAndAdds) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, ConcurrentMixedAddsSumExactly) {
  Counter counter;
  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add(static_cast<uint64_t>(t) + 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Sum over t of (t+1) * kPerThread = kPerThread * kThreads*(kThreads+1)/2.
  EXPECT_EQ(counter.Value(), kPerThread * kThreads * (kThreads + 1) / 2);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  // Bucket i holds values with bit_width == i: bucket 0 is exactly {0},
  // bucket 1 is {1}, bucket 2 is [2,4), bucket 3 is [4,8), ...
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(10), 512u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~uint64_t{0});
}

TEST(HistogramTest, RecordsIntoCorrectBuckets) {
  Histogram hist;
  hist.Record(0);    // bucket 0
  hist.Record(1);    // bucket 1
  hist.Record(2);    // bucket 2
  hist.Record(3);    // bucket 2
  hist.Record(700);  // bucket 10 ([512, 1024))
  EXPECT_EQ(hist.Count(), 5u);
  EXPECT_EQ(hist.Sum(), 706u);
  EXPECT_EQ(hist.BucketCount(0), 1u);
  EXPECT_EQ(hist.BucketCount(1), 1u);
  EXPECT_EQ(hist.BucketCount(2), 2u);
  EXPECT_EQ(hist.BucketCount(10), 1u);
}

TEST(HistogramTest, PercentilesInterpolateWithinBucketError) {
  Histogram hist;
  for (uint64_t v = 1; v <= 1000; ++v) hist.Record(v);
  // The histogram is exponential, so any percentile is within a factor of
  // two of the exact order statistic.
  const double p50 = hist.Percentile(50);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  const double p99 = hist.Percentile(99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  // Percentiles are monotone in p.
  EXPECT_LE(hist.Percentile(10), hist.Percentile(50));
  EXPECT_LE(hist.Percentile(50), hist.Percentile(90));
  EXPECT_LE(hist.Percentile(90), hist.Percentile(100));
}

TEST(HistogramTest, EmptyAndReset) {
  Histogram hist;
  EXPECT_EQ(hist.Percentile(50), 0.0);
  hist.Record(123);
  hist.Reset();
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Sum(), 0u);
  EXPECT_EQ(hist.Percentile(99), 0.0);
}

TEST(HistogramTest, EmptyPercentilesAreZeroAtEveryP) {
  Histogram hist;
  for (const double p : {0.0, 1.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(hist.Percentile(p), 0.0) << "p=" << p;
  }
}

TEST(HistogramTest, SingleBucketInterpolationStaysInsideBucket) {
  // All mass in one bucket: every percentile must interpolate within that
  // bucket's [lower, upper) bounds, never escape into neighbours.
  Histogram hist;
  for (int i = 0; i < 1000; ++i) hist.Record(600);  // bucket [512, 1024)
  for (const double p : {1.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    const double v = hist.Percentile(p);
    EXPECT_GE(v, 512.0) << "p=" << p;
    EXPECT_LE(v, 1024.0) << "p=" << p;
  }
  // Interpolation is monotone across the single bucket.
  EXPECT_LE(hist.Percentile(10), hist.Percentile(90));
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (uint64_t i = 0; i < kPerThread; ++i) hist.Record(i % 1024);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(hist.Count(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, ReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("fts_test_total", "help");
  Counter* b = registry.GetCounter("fts_test_total");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("fts_test_micros");
  Histogram* h2 = registry.GetHistogram("fts_test_micros");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry registry;
  registry.GetCounter("fts_widgets_total", "Widgets made")->Add(7);
  registry.GetCounter("fts_labeled_total{kind=\"a\"}", "Labeled")->Add(1);
  registry.GetCounter("fts_labeled_total{kind=\"b\"}")->Add(2);
  Histogram* hist = registry.GetHistogram("fts_latency_micros", "Latency");
  hist->Record(3);
  hist->Record(300);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP fts_widgets_total Widgets made\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fts_widgets_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("fts_widgets_total 7\n"), std::string::npos);
  // Labelled series: sample lines keep the labels, the family header is
  // emitted once without them.
  EXPECT_NE(text.find("fts_labeled_total{kind=\"a\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("fts_labeled_total{kind=\"b\"} 2\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE fts_labeled_total{"), std::string::npos);
  // Histogram exposition: cumulative buckets, +Inf, _sum, _count.
  EXPECT_NE(text.find("fts_latency_micros_bucket{le=\"4\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("fts_latency_micros_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fts_latency_micros_sum 303\n"), std::string::npos);
  EXPECT_NE(text.find("fts_latency_micros_count 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonDumpRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("fts_a_total")->Add(5);
  registry.GetHistogram("fts_b_micros")->Record(100);

  const auto parsed = ParseJson(registry.RenderJson());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* a = counters->Find("fts_a_total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->number, 5.0);
  const JsonValue* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* b = histograms->Find("fts_b_micros");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->Find("count"), nullptr);
  EXPECT_EQ(b->Find("count")->number, 1.0);
  ASSERT_NE(b->Find("p50"), nullptr);
  EXPECT_GT(b->Find("p50")->number, 0.0);
}

TEST(MetricsRegistryTest, ResetZeroesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("fts_x_total")->Add(9);
  registry.GetHistogram("fts_y_micros")->Record(9);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("fts_x_total")->Value(), 0u);
  EXPECT_EQ(registry.GetHistogram("fts_y_micros")->Count(), 0u);
}

TEST(MetricsRegistryTest, GaugesRenderInPrometheusAndJson) {
  MetricsRegistry registry;
  uint64_t level = 17;
  registry.RegisterGauge("fts_water_level", "Current level",
                         [&level] { return level; });

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP fts_water_level Current level\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fts_water_level gauge\n"), std::string::npos);
  EXPECT_NE(text.find("fts_water_level 17\n"), std::string::npos);

  // Gauges are sampled at exposition time, not at registration time.
  level = 99;
  text = registry.RenderPrometheus();
  EXPECT_NE(text.find("fts_water_level 99\n"), std::string::npos);

  const auto parsed = ParseJson(registry.RenderJson());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const JsonValue* gauge = gauges->Find("fts_water_level");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->number, 99.0);

  // Re-registering replaces the callback; Reset leaves gauges alone.
  registry.RegisterGauge("fts_water_level", "Current level",
                         [] { return uint64_t{5}; });
  registry.Reset();
  EXPECT_NE(registry.RenderPrometheus().find("fts_water_level 5\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, GlobalRegistryExportsProcessGauges) {
  // The global registry self-registers process-level gauges at creation:
  // RSS, live threads, uptime. RSS and thread count must be non-zero on
  // any live process; uptime may legitimately still be 0 seconds.
  const auto parsed = ParseJson(MetricsRegistry::Global().RenderJson());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const JsonValue* rss = gauges->Find("fts_process_rss_kbytes");
  ASSERT_NE(rss, nullptr);
  EXPECT_GT(rss->number, 0.0);
  const JsonValue* threads = gauges->Find("fts_process_threads");
  ASSERT_NE(threads, nullptr);
  EXPECT_GE(threads->number, 1.0);
  ASSERT_NE(gauges->Find("fts_process_uptime_seconds"), nullptr);
}

TEST(EngineMetricsTest, GlobalInstanceResolves) {
  const EngineMetrics& metrics = Metrics();
  ASSERT_NE(metrics.queries_total, nullptr);
  ASSERT_NE(metrics.jit_compile_micros, nullptr);
  // Same call, same pointers (resolved once).
  EXPECT_EQ(&Metrics(), &metrics);
  // The instance is backed by the global registry.
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("fts_queries_total"),
            metrics.queries_total);
}

TEST(JsonWriterTest, EscapesAndNests) {
  JsonWriter json;
  json.BeginObject();
  json.Key("s").String("a\"b\\c\nd");
  json.Key("list").BeginArray().Number(1).Number(2.5).Bool(true).EndArray();
  json.Key("n").Null();
  json.EndObject();
  const auto parsed = ParseJson(json.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->Find("s"), nullptr);
  EXPECT_EQ(parsed->Find("s")->string, "a\"b\\c\nd");
  ASSERT_NE(parsed->Find("list"), nullptr);
  ASSERT_EQ(parsed->Find("list")->array.size(), 3u);
  EXPECT_EQ(parsed->Find("list")->array[1].number, 2.5);
}

}  // namespace
}  // namespace fts::obs
