#include <gtest/gtest.h>

#include "fts/common/random.h"
#include "fts/perf/bandwidth.h"
#include "fts/perf/branch_predictor.h"
#include "fts/perf/perf_counters.h"
#include "fts/perf/prefetcher.h"
#include "fts/storage/data_generator.h"

namespace fts {
namespace {

// --- Branch predictor models ------------------------------------------

TEST(BranchPredictorTest, StaticPredictorCountsExactly) {
  StaticPredictor taken(true);
  taken.PredictAndUpdate(0, true);
  taken.PredictAndUpdate(0, false);
  taken.PredictAndUpdate(0, false);
  EXPECT_EQ(taken.stats().branches, 3u);
  EXPECT_EQ(taken.stats().mispredictions, 2u);
}

TEST(BranchPredictorTest, BimodalLearnsConstantDirection) {
  BimodalPredictor predictor;
  for (int i = 0; i < 1000; ++i) predictor.PredictAndUpdate(7, true);
  // After warm-up (two updates) every prediction is correct.
  EXPECT_LE(predictor.stats().mispredictions, 2u);
}

TEST(BranchPredictorTest, BimodalNearHalfOnRandom) {
  BimodalPredictor predictor;
  Xoshiro256 rng(3);
  const int n = 100000;
  for (int i = 0; i < n; ++i) predictor.PredictAndUpdate(7, rng.NextBool());
  const double rate = predictor.stats().MispredictionRate();
  EXPECT_GT(rate, 0.4);
  EXPECT_LT(rate, 0.6);
}

TEST(BranchPredictorTest, GshareLearnsPeriodicPattern) {
  // T,T,N repeating: history makes this perfectly predictable for gshare
  // but not for bimodal (whose counter oscillates on the 2/3-1/3 mix).
  GsharePredictor gshare;
  BimodalPredictor bimodal;
  for (int i = 0; i < 30000; ++i) {
    const bool taken = (i % 3) != 2;
    gshare.PredictAndUpdate(7, taken);
    bimodal.PredictAndUpdate(7, taken);
  }
  EXPECT_LT(gshare.stats().MispredictionRate(), 0.02);
  EXPECT_GT(bimodal.stats().MispredictionRate(), 0.1);
}

TEST(BranchPredictorTest, FactoryNames) {
  EXPECT_NE(MakeBranchPredictor("bimodal"), nullptr);
  EXPECT_NE(MakeBranchPredictor("gshare"), nullptr);
  EXPECT_NE(MakeBranchPredictor("static-taken"), nullptr);
  EXPECT_NE(MakeBranchPredictor("static-nottaken"), nullptr);
  EXPECT_EQ(MakeBranchPredictor("tage"), nullptr);
}

// --- Scan branch-trace replays ------------------------------------------

std::vector<AlignedVector<int32_t>> MakeColumns(size_t rows, double sel,
                                                uint64_t seed,
                                                std::vector<ScanStage>* out) {
  Xoshiro256 rng(seed);
  std::vector<AlignedVector<int32_t>> columns;
  for (int s = 0; s < 2; ++s) {
    const auto mask = ExactSelectivityMask(
        rows, MatchCountForSelectivity(rows, sel), rng);
    columns.push_back(FillFromMask<int32_t>(mask, 5, 1000, 1 << 30, rng));
  }
  out->clear();
  for (int s = 0; s < 2; ++s) {
    ScanStage stage;
    stage.data = columns[s].data();
    stage.type = ScanElementType::kI32;
    stage.op = CompareOp::kEq;
    stage.value.i32 = 5;
    out->push_back(stage);
  }
  return columns;
}

TEST(BranchReplayTest, SisdBranchCountMatchesShortCircuit) {
  // With selectivity s, the second predicate's branch executes only on
  // first-stage matches: total branches = rows + matches_0.
  const size_t rows = 10000;
  std::vector<ScanStage> stages;
  const auto columns = MakeColumns(rows, 0.25, 11, &stages);
  StaticPredictor predictor(false);
  const BranchStats stats =
      ReplaySisdScanBranches(stages.data(), stages.size(), rows, predictor);
  EXPECT_EQ(stats.branches, rows + 2500u);
}

TEST(BranchReplayTest, MispredictionsPeakAtMidSelectivity) {
  const size_t rows = 50000;
  uint64_t low = 0, mid = 0, full = 0;
  for (const auto& [sel, out] :
       std::vector<std::pair<double, uint64_t*>>{
           {0.0001, &low}, {0.5, &mid}, {1.0, &full}}) {
    std::vector<ScanStage> stages;
    const auto columns = MakeColumns(rows, sel, 13, &stages);
    GsharePredictor predictor;
    *out = ReplaySisdScanBranches(stages.data(), stages.size(), rows,
                                  predictor)
               .mispredictions;
  }
  EXPECT_GT(mid, 10 * low);   // Mid-selectivity is the worst case.
  EXPECT_GT(mid, 10 * full);  // At 100% the branch is predictable again.
}

TEST(BranchReplayTest, FusedScanBranchesFarFewer) {
  const size_t rows = 50000;
  std::vector<ScanStage> stages;
  const auto columns = MakeColumns(rows, 0.5, 17, &stages);
  GsharePredictor sisd_predictor, fused_predictor;
  const auto sisd = ReplaySisdScanBranches(stages.data(), stages.size(),
                                           rows, sisd_predictor);
  const auto fused = ReplayFusedScanBranches(stages.data(), stages.size(),
                                             rows, 16, fused_predictor);
  // Fig. 6: roughly an order of magnitude fewer mispredictions.
  EXPECT_LT(fused.mispredictions * 5, sisd.mispredictions);
  EXPECT_LT(fused.branches, sisd.branches);
}

TEST(BranchReplayTest, WiderRegistersBranchLess) {
  const size_t rows = 50000;
  std::vector<ScanStage> stages;
  const auto columns = MakeColumns(rows, 0.5, 19, &stages);
  uint64_t branches[3];
  const int lanes[3] = {4, 8, 16};
  for (int i = 0; i < 3; ++i) {
    GsharePredictor predictor;
    branches[i] = ReplayFusedScanBranches(stages.data(), stages.size(),
                                          rows, lanes[i], predictor)
                      .branches;
  }
  EXPECT_GT(branches[0], branches[1]);
  EXPECT_GT(branches[1], branches[2]);
}

// --- Prefetcher model ----------------------------------------------------

TEST(PrefetcherTest, SequentialStreamIsUseful) {
  StreamPrefetcherSim prefetcher;
  for (uint64_t i = 0; i < 64 * 1024; i += 4) prefetcher.Access(i);
  const PrefetchStats stats = prefetcher.Finish();
  EXPECT_GT(stats.prefetches_issued, 100u);
  // A pure sequential stream consumes nearly everything it prefetches.
  EXPECT_GT(stats.useful_prefetches * 10, stats.useless_prefetches);
}

TEST(PrefetcherTest, RandomAccessesIssueFewPrefetches) {
  StreamPrefetcherSim prefetcher;
  Xoshiro256 rng(23);
  for (int i = 0; i < 10000; ++i) {
    prefetcher.Access(rng.Next() % (1ull << 30));
  }
  const PrefetchStats stats = prefetcher.Finish();
  EXPECT_LT(stats.prefetches_issued, 1000u);
}

TEST(PrefetcherTest, SisdUselessPrefetchesPeakMidSelectivity) {
  const size_t rows = 100000;
  uint64_t low = 0, mid = 0, full = 0;
  for (const auto& [sel, out] :
       std::vector<std::pair<double, uint64_t*>>{
           {0.001, &low}, {0.3, &mid}, {1.0, &full}}) {
    std::vector<ScanStage> stages;
    const auto columns = MakeColumns(rows, sel, 29, &stages);
    StreamPrefetcherSim prefetcher;
    *out = ReplaySisdScanAccesses(stages.data(), stages.size(), rows,
                                  prefetcher)
               .useless_prefetches;
  }
  // Fig. 1's arc: rises from low selectivity to the middle, falls again
  // when every row qualifies (the stream becomes dense and useful).
  EXPECT_GT(mid, low);
  EXPECT_GT(mid, full);
}

TEST(PrefetcherTest, FusedAccessPatternWastesLess) {
  const size_t rows = 100000;
  std::vector<ScanStage> stages;
  const auto columns = MakeColumns(rows, 0.3, 31, &stages);
  StreamPrefetcherSim sisd_prefetcher, fused_prefetcher;
  const uint64_t sisd = ReplaySisdScanAccesses(stages.data(), stages.size(),
                                               rows, sisd_prefetcher)
                            .useless_prefetches;
  const uint64_t fused =
      ReplayFusedScanAccesses(stages.data(), stages.size(), rows, 16,
                              fused_prefetcher)
          .useless_prefetches;
  EXPECT_LE(fused, sisd);
}

// --- perf_event wrapper ---------------------------------------------------

TEST(PerfCountersTest, OpenEitherWorksOrReportsUnavailable) {
  auto group = PerfCounterGroup::Open({HwEvent::kBranchMisses});
  if (!group.ok()) {
    EXPECT_EQ(group.status().code(), StatusCode::kUnavailable);
    EXPECT_FALSE(HardwareCountersAvailable());
    return;
  }
  ASSERT_TRUE(group->Start().ok());
  volatile int sink = 0;
  for (int i = 0; i < 1000; ++i) sink = sink + i;
  ASSERT_TRUE(group->Stop().ok());
  const auto values = group->Read();
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values->size(), 1u);
}

TEST(PerfCountersTest, EmptyEventListRejected) {
  EXPECT_EQ(PerfCounterGroup::Open({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PerfCountersTest, EventNames) {
  EXPECT_STREQ(HwEventToString(HwEvent::kBranchMisses), "branch-misses");
  EXPECT_STREQ(HwEventToString(HwEvent::kCycles), "cycles");
}

// --- Bandwidth helpers ----------------------------------------------------

TEST(BandwidthTest, StridedCountCorrect) {
  AlignedVector<int32_t> data(64, 1);
  data[0] = 42;
  data[16] = 42;
  data[17] = 42;
  EXPECT_EQ(StridedCompareCount(data.data(), data.size(), 42, 1), 3u);
  EXPECT_EQ(StridedCompareCount(data.data(), data.size(), 42, 16), 2u);
  EXPECT_EQ(StridedCompareCount(data.data(), data.size(), 42, 64), 1u);
}

TEST(BandwidthTest, SampleFieldsPopulated) {
  Xoshiro256 rng(5);
  const auto data = GenerateUniformColumn<int32_t>(1 << 20, 0, 100, rng);
  const BandwidthSample sample =
      MeasureStridedScan(data.data(), data.size(), 42, 4);
  EXPECT_GT(sample.seconds, 0.0);
  EXPECT_GT(sample.gb_per_second, 0.0);
  EXPECT_GT(sample.values_per_microsecond, 0.0);
}

}  // namespace
}  // namespace fts
